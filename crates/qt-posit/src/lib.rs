//! Posit arithmetic for DNN training and inference, as used by the paper
//! *8-bit Transformer Inference and Fine-tuning for Edge Accelerators*
//! (ASPLOS 2024, section 3).
//!
//! A posit `Posit<N, ES>` has four fields: sign, a variable-length *regime*
//! (a run of identical bits encoding a scaling of `useed^k` where
//! `useed = 2^(2^ES)`), up to `ES` exponent bits, and the remaining bits of
//! fraction. The variable-length fields give posits *tapered precision*:
//! values near 1 get the most fraction bits, and very large/small values get
//! none (Figures 1 and 3 of the paper).
//!
//! This crate provides:
//!
//! - bit-exact encode/decode with round-to-nearest-even,
//! - both the standard posit underflow rule (tiny values saturate to
//!   `minpos`) and the paper's modified rule (§3.4: round-to-even below
//!   `minpos/2`, which is essential for training),
//! - fused (deferred-rounding) dot products via an exact integer [`Quire`],
//! - the bitwise approximate operations of §3.3 and §4.1: sigmoid,
//!   reciprocal, and the thresholded + shifted exponential used by the
//!   posit softmax ([`approx`]).
//!
//! # Example
//!
//! ```
//! use qt_posit::P8E1;
//!
//! let x = P8E1::from_f64(0.171875);
//! assert_eq!(x.to_f64(), 0.171875); // exactly representable (Figure 1)
//! assert_eq!(P8E1::MAXPOS_EXP, 12); // range 2^-12 ..= 2^12
//! assert_eq!(P8E1::from_f64(1e9).to_f64(), 4096.0); // saturates at maxpos
//! ```

#![warn(missing_docs)]

pub mod approx;
pub mod quire;

pub use quire::{FusedDot, Quire};

use core::fmt;

/// Rounding policy for values below `minpos` (the smallest positive posit).
///
/// The policies only differ for `0 < |x| < minpos`; everything else uses
/// round-to-nearest-even with saturation at `maxpos`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum UnderflowPolicy {
    /// Standard posit (Gustafson): a non-zero value never rounds to zero;
    /// anything in `(0, minpos)` rounds *up* to `minpos`. The paper shows
    /// this diverges when training (gradients are often below `minpos`).
    Standard,
    /// The paper's §3.4 rule: round-to-nearest-even between `0` and
    /// `minpos`, so values below `minpos/2` flush to zero. This is the
    /// default used throughout the reproduction.
    #[default]
    RoundTiesToZero,
}

/// A posit value with `N` total bits and `ES` exponent bits.
///
/// The bit pattern is stored right-aligned in a `u16`, so `N <= 16`.
/// Negative values use two's-complement encoding of the whole `N`-bit code,
/// which makes posit codes *monotone*: comparing codes as `N`-bit signed
/// integers matches comparing values.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Posit<const N: u32, const ES: u32> {
    bits: u16,
}

/// 8-bit posit with 0 exponent bits; range `2^-6 ..= 2^6`. Used by the fast
/// sigmoid approximation (§3.3).
pub type P8E0 = Posit<8, 0>;
/// 8-bit posit with 1 exponent bit; range `2^-12 ..= 2^12`. The paper's
/// primary "Posit8" format.
pub type P8E1 = Posit<8, 1>;
/// 8-bit posit with 2 exponent bits; range `2^-24 ..= 2^24`. Evaluated for
/// large Transformers (§4.3).
pub type P8E2 = Posit<8, 2>;
/// 16-bit posit with 1 exponent bit, used for the 16-bit hardware
/// comparison points of §4.2.
pub type P16E1 = Posit<16, 1>;

impl<const N: u32, const ES: u32> Posit<N, ES> {
    /// Number of bits in the format.
    pub const BITS: u32 = N;
    /// Number of exponent bits.
    pub const ES: u32 = ES;
    /// `log2(maxpos)`: `maxpos = 2^((N-2) * 2^ES)`.
    pub const MAXPOS_EXP: i32 = ((N - 2) as i32) << ES;

    const CODE_MASK: u16 = (((1u32 << N) - 1) as u16);
    const SIGN_BIT: u16 = (1u32 << (N - 1)) as u16;
    /// Code of `maxpos` (all ones except the sign bit).
    const MAXPOS_CODE: u16 = Self::SIGN_BIT - 1;
    /// Code of `minpos` (one in the LSB).
    const MINPOS_CODE: u16 = 1;

    /// Positive zero (code `0…0`).
    pub const ZERO: Self = Self { bits: 0 };
    /// Not-a-Real (code `10…0`), posit's single exception value.
    pub const NAR: Self = Self {
        bits: Self::SIGN_BIT,
    };
    /// One (code `010…0`).
    pub const ONE: Self = Self {
        bits: (1u32 << (N - 2)) as u16,
    };

    /// Construct from a raw `N`-bit code. Bits above `N` are masked off.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Self {
            bits: bits & Self::CODE_MASK,
        }
    }

    /// The raw `N`-bit code.
    #[inline]
    pub const fn bits(self) -> u16 {
        self.bits
    }

    /// Largest representable value, `2^((N-2)·2^ES)`.
    #[inline]
    pub fn maxpos() -> f64 {
        libm::ldexp(1.0, Self::MAXPOS_EXP)
    }

    /// Smallest positive representable value, `2^-((N-2)·2^ES)`.
    #[inline]
    pub fn minpos() -> f64 {
        libm::ldexp(1.0, -Self::MAXPOS_EXP)
    }

    /// `true` for the Not-a-Real exception value.
    #[inline]
    pub fn is_nar(self) -> bool {
        self.bits == Self::SIGN_BIT
    }

    /// `true` for (positive) zero — posits have a single zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.bits == 0
    }

    /// Negate (two's complement of the code).
    #[inline]
    pub fn negated(self) -> Self {
        Self::from_bits(self.bits.wrapping_neg())
    }

    /// Decode to `f64`. Exact: every finite posit with `N <= 16` is exactly
    /// representable in `f64`. [`Posit::NAR`] decodes to NaN.
    pub fn to_f64(self) -> f64 {
        if self.bits == 0 {
            return 0.0;
        }
        if self.is_nar() {
            return f64::NAN;
        }
        let negative = self.bits & Self::SIGN_BIT != 0;
        let code = if negative {
            self.bits.wrapping_neg() & Self::CODE_MASK
        } else {
            self.bits
        };
        let (scale, frac_num, frac_bits) = decode_fields(code, N, ES);
        let frac = 1.0 + frac_num as f64 / (1u64 << frac_bits) as f64;
        let mag = libm::ldexp(frac, scale);
        if negative {
            -mag
        } else {
            mag
        }
    }

    /// Decode to `f32` (exact for `N <= 16`).
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// Round an `f64` to the nearest posit using the paper's default
    /// underflow policy ([`UnderflowPolicy::RoundTiesToZero`]).
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        Self::from_f64_with(x, UnderflowPolicy::RoundTiesToZero)
    }

    /// Round an `f32` to the nearest posit (paper's underflow policy).
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        Self::from_f64(x as f64)
    }

    /// Round an `f64` to the nearest posit under an explicit
    /// [`UnderflowPolicy`].
    ///
    /// Values with magnitude above `maxpos` saturate to `±maxpos` (never to
    /// NaR); NaN maps to NaR.
    pub fn from_f64_with(x: f64, policy: UnderflowPolicy) -> Self {
        if x == 0.0 {
            return Self::ZERO;
        }
        if x.is_nan() {
            return Self::NAR;
        }
        let negative = x < 0.0;
        let a = x.abs();
        let maxpos = Self::maxpos();
        let minpos = Self::minpos();
        let mag_code = if a >= maxpos {
            Self::MAXPOS_CODE
        } else if a < minpos {
            match policy {
                UnderflowPolicy::Standard => Self::MINPOS_CODE,
                UnderflowPolicy::RoundTiesToZero => {
                    // RNE between 0 (even) and minpos (odd): ties go to 0.
                    if a > minpos / 2.0 {
                        Self::MINPOS_CODE
                    } else {
                        return Self::ZERO;
                    }
                }
            }
        } else {
            round_magnitude::<N, ES>(a)
        };
        if negative {
            Self::from_bits(mag_code.wrapping_neg())
        } else {
            Self::from_bits(mag_code)
        }
    }

    /// Quantize `x` onto this posit grid and return the result as `f64`
    /// (the scalar fake-quantization primitive, paper's default policy).
    #[inline]
    pub fn quantize(x: f64) -> f64 {
        Self::from_f64(x).to_f64()
    }

    /// Quantize `x` under an explicit underflow policy.
    #[inline]
    pub fn quantize_with(x: f64, policy: UnderflowPolicy) -> f64 {
        Self::from_f64_with(x, policy).to_f64()
    }

    /// Number of fraction bits in the encoding of this value (0 for zero,
    /// NaR, and values whose regime+exponent consume all bits). This is what
    /// tapers: see Figure 3 of the paper.
    pub fn fraction_bits(self) -> u32 {
        if self.bits == 0 || self.is_nar() {
            return 0;
        }
        let code = if self.bits & Self::SIGN_BIT != 0 {
            self.bits.wrapping_neg() & Self::CODE_MASK
        } else {
            self.bits
        };
        decode_fields(code, N, ES).2
    }

    /// Iterate over every value of the format in code order, excluding NaR:
    /// `0, minpos, …, maxpos, -maxpos, …, -minpos` (useful for exhaustive
    /// tests; 255 values for `N = 8`).
    pub fn all_finite() -> impl Iterator<Item = Self> {
        (0..(1u32 << N)).map(|b| Self::from_bits(b as u16)).filter(|p| !p.is_nar())
    }

    /// Total ordering of posit codes: NaR first, then values in increasing
    /// numeric order. This is the signed-integer order of the `N`-bit codes,
    /// which the hardware comparator uses directly.
    pub fn total_cmp(self, other: Self) -> core::cmp::Ordering {
        let a = sign_extend(self.bits, N);
        let b = sign_extend(other.bits, N);
        a.cmp(&b)
    }
}

/// Decode the regime/exponent/fraction fields of a *positive* posit code.
/// Returns `(scale, fraction_numerator, fraction_bits)` so that the value is
/// `(1 + frac_num / 2^frac_bits) * 2^scale`.
fn decode_fields(code: u16, n: u32, es: u32) -> (i32, u64, u32) {
    // Bits below the sign, MSB-first.
    let body_len = n - 1;
    let body = code & (((1u32 << body_len) - 1) as u16);
    let first = (body >> (body_len - 1)) & 1;
    // Run length of identical leading bits.
    let mut m = 1u32;
    while m < body_len && ((body >> (body_len - 1 - m)) & 1) == first {
        m += 1;
    }
    let k: i32 = if first == 1 { m as i32 - 1 } else { -(m as i32) };
    // Bits consumed: the run plus (if any bits remain) the terminating bit.
    let mut idx = body_len.saturating_sub(m); // bits remaining after run
    idx = idx.saturating_sub(1);
    // Exponent: up to ES bits; missing low bits are zero.
    let exp_avail = idx.min(es);
    let mut e = 0u32;
    if exp_avail > 0 {
        let shift = idx - exp_avail;
        e = ((body >> shift) & (((1u32 << exp_avail) - 1) as u16)) as u32;
        idx -= exp_avail;
    }
    e <<= es - exp_avail;
    let frac_bits = idx;
    let frac_num = (body & (((1u32 << frac_bits) - 1) as u16)) as u64;
    let scale = (k << es) + e as i32;
    (scale, frac_num, frac_bits)
}

/// Round a positive magnitude `a` in `[minpos, maxpos)` to the nearest posit
/// code (round-to-nearest, ties-to-even-code).
fn round_magnitude<const N: u32, const ES: u32>(a: f64) -> u16 {
    // Build the exact bit string (regime | exponent | 52-bit fraction) in a
    // u128, then truncate to the N-1 code bits. Posit codes are monotone in
    // value, so the truncation is the floor and `floor + 1` the ceiling.
    let scale = ilogb(a);
    let k = scale.div_euclid(1 << ES);
    let e = (scale.rem_euclid(1 << ES)) as u128;
    let frac52 = (a.to_bits() & ((1u64 << 52) - 1)) as u128; // mantissa below the leading 1

    let (regime, regime_len) = if k >= 0 {
        // k+1 ones then a zero
        (((1u128 << (k + 1)) - 1) << 1, (k + 2) as u32)
    } else {
        // -k zeros then a one
        (1u128, (-k + 1) as u32)
    };
    let ext_len = regime_len + ES + 52;
    let ext: u128 = (regime << (ES + 52)) | (e << 52) | frac52;

    let code_bits = N - 1;
    // The regime alone can fill the code for extreme values.
    let floor_code = if ext_len >= code_bits {
        (ext >> (ext_len - code_bits)) as u16
    } else {
        (ext << (code_bits - ext_len)) as u16
    };
    let floor_code = floor_code
        .min(((1u32 << code_bits) - 1) as u16)
        .max(1);

    let v_lo = Posit::<N, ES>::from_bits(floor_code).to_f64();
    if v_lo == a {
        return floor_code;
    }
    debug_assert!(v_lo < a, "floor {v_lo} vs {a}");
    if floor_code == ((1u32 << code_bits) - 1) as u16 {
        return floor_code; // already at maxpos
    }
    let hi_code = floor_code + 1;
    let v_hi = Posit::<N, ES>::from_bits(hi_code).to_f64();
    // v_lo and v_hi have few significand bits; their midpoint is exact in f64.
    let mid = 0.5 * (v_lo + v_hi);
    if a < mid {
        floor_code
    } else if a > mid {
        hi_code
    } else if floor_code & 1 == 0 {
        floor_code
    } else {
        hi_code
    }
}

#[inline]
fn ilogb(a: f64) -> i32 {
    debug_assert!(a > 0.0 && a.is_finite());
    let bits = a.to_bits();
    let be = ((bits >> 52) & 0x7ff) as i32;
    if be == 0 {
        ilogb(a * libm::ldexp(1.0, 128)) - 128
    } else {
        be - 1023
    }
}

#[inline]
fn sign_extend(bits: u16, n: u32) -> i32 {
    let shift = 32 - n;
    (((bits as u32) << shift) as i32) >> shift
}

impl<const N: u32, const ES: u32> fmt::Debug for Posit<N, ES> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nar() {
            write!(f, "Posit<{N},{ES}>(NaR)")
        } else {
            write!(f, "Posit<{N},{ES}>({})", self.to_f64())
        }
    }
}

impl<const N: u32, const ES: u32> fmt::Display for Posit<N, ES> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_nar() {
            write!(f, "NaR")
        } else {
            write!(f, "{}", self.to_f64())
        }
    }
}

impl<const N: u32, const ES: u32> fmt::Binary for Posit<N, ES> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:0width$b}", self.bits, width = N as usize)
    }
}

impl<const N: u32, const ES: u32> Default for Posit<N, ES> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<const N: u32, const ES: u32> PartialOrd for Posit<N, ES> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        if self.is_nar() || other.is_nar() {
            None
        } else {
            Some(self.total_cmp(*other))
        }
    }
}

impl<const N: u32, const ES: u32> core::ops::Neg for Posit<N, ES> {
    type Output = Self;
    fn neg(self) -> Self {
        self.negated()
    }
}

impl<const N: u32, const ES: u32> core::ops::Add for Posit<N, ES> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        if self.is_nar() || rhs.is_nar() {
            return Self::NAR;
        }
        Self::from_f64(self.to_f64() + rhs.to_f64())
    }
}

impl<const N: u32, const ES: u32> core::ops::Sub for Posit<N, ES> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        if self.is_nar() || rhs.is_nar() {
            return Self::NAR;
        }
        Self::from_f64(self.to_f64() - rhs.to_f64())
    }
}

impl<const N: u32, const ES: u32> core::ops::Mul for Posit<N, ES> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        if self.is_nar() || rhs.is_nar() {
            return Self::NAR;
        }
        Self::from_f64(self.to_f64() * rhs.to_f64())
    }
}

impl<const N: u32, const ES: u32> core::ops::Div for Posit<N, ES> {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        if self.is_nar() || rhs.is_nar() || rhs.is_zero() {
            return Self::NAR;
        }
        Self::from_f64(self.to_f64() / rhs.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::unusual_byte_groupings)] // grouped as sign_regime_exp_frac
    fn figure1_example() {
        // Figure 1: 8-bit posit, es=1, value 0.171875 = 1.011 * 4^-2 * 2^1.
        // sign 0, regime 001 (k=-2), exponent 1, fraction 011.
        let p = P8E1::from_bits(0b0_001_1_011);
        assert_eq!(p.to_f64(), 0.171875);
        assert_eq!(P8E1::from_f64(0.171875).bits(), 0b0_001_1_011);
        assert_eq!(p.fraction_bits(), 3);
    }

    #[test]
    fn ranges() {
        assert_eq!(P8E1::maxpos(), 4096.0); // 2^12
        assert_eq!(P8E1::minpos(), libm::ldexp(1.0, -12));
        assert_eq!(P8E0::maxpos(), 64.0); // 2^6
        assert_eq!(P8E2::maxpos(), libm::ldexp(1.0, 24));
        assert_eq!(P16E1::maxpos(), libm::ldexp(1.0, 28));
    }

    #[test]
    fn special_codes() {
        assert_eq!(P8E1::ZERO.to_f64(), 0.0);
        assert!(P8E1::NAR.to_f64().is_nan());
        assert_eq!(P8E1::ONE.to_f64(), 1.0);
        assert_eq!(P8E1::from_bits(0x7f).to_f64(), 4096.0);
        assert_eq!(P8E1::from_bits(0x01).to_f64(), libm::ldexp(1.0, -12));
        // -1 is the two's complement of the code of 1.
        assert_eq!(
            P8E1::from_f64(-1.0).bits(),
            P8E1::ONE.bits().wrapping_neg() & 0xff
        );
    }

    #[test]
    fn roundtrip_exhaustive_all_formats() {
        fn check<const N: u32, const ES: u32>() {
            for p in Posit::<N, ES>::all_finite() {
                let v = p.to_f64();
                let q = Posit::<N, ES>::from_f64(v);
                assert_eq!(q.bits(), p.bits(), "N={N} ES={ES} v={v} p={:b}", p);
            }
        }
        check::<8, 0>();
        check::<8, 1>();
        check::<8, 2>();
        check::<16, 1>();
        check::<6, 1>();
    }

    #[test]
    fn monotone_codes() {
        // Positive codes in increasing order decode to increasing values.
        let mut prev = 0.0;
        for b in 1u16..=P8E1::MAXPOS_CODE {
            let v = P8E1::from_bits(b).to_f64();
            assert!(v > prev, "code {b:#x}: {v} !> {prev}");
            prev = v;
        }
    }

    #[test]
    fn total_order_matches_value_order() {
        let vals: Vec<P8E1> = P8E1::all_finite().collect();
        for &a in &vals {
            for &b in &vals {
                let by_code = a.total_cmp(b);
                let by_val = a.to_f64().partial_cmp(&b.to_f64()).unwrap();
                assert_eq!(by_code, by_val, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn rounding_nearest() {
        // Between 1.0 and the next posit (1.0625 for P8E1: 1 + 2^-4) values
        // round to the nearest; the midpoint ties to the even code (1.0).
        let next = P8E1::from_bits(P8E1::ONE.bits() + 1).to_f64();
        assert_eq!(next, 1.0625);
        assert_eq!(P8E1::quantize(1.02), 1.0);
        assert_eq!(P8E1::quantize(1.05), 1.0625);
        assert_eq!(P8E1::quantize(1.03125), 1.0); // tie → even code 0x40
    }

    #[test]
    fn saturation() {
        assert_eq!(P8E1::quantize(1e300), 4096.0);
        assert_eq!(P8E1::quantize(-1e300), -4096.0);
        assert_eq!(P8E1::quantize(f64::INFINITY), 4096.0);
        assert!(P8E1::from_f64(f64::NAN).is_nar());
    }

    #[test]
    fn underflow_policies_section_3_4() {
        let minpos = P8E1::minpos(); // 2^-12
        let half = minpos / 2.0; // 2^-13
        // Standard posit: never round a non-zero to zero.
        assert_eq!(
            P8E1::quantize_with(half / 4.0, UnderflowPolicy::Standard),
            minpos
        );
        // Paper: values below 2^-13 flush to zero, at/above round to minpos.
        assert_eq!(P8E1::quantize(half * 0.99), 0.0);
        assert_eq!(P8E1::quantize(half), 0.0); // tie → zero (even)
        assert_eq!(P8E1::quantize(half * 1.01), minpos);
        assert_eq!(P8E1::quantize(-half * 0.99), 0.0);
        assert_eq!(P8E1::quantize(-half * 1.5), -minpos);
    }

    #[test]
    fn tapered_fraction_bits() {
        // Near 1: max fraction bits (N - 1 - 2 - ES = 4 for P8E1).
        assert_eq!(P8E1::from_f64(1.3).fraction_bits(), 4);
        // At the extremes: zero fraction bits.
        assert_eq!(P8E1::from_f64(4096.0).fraction_bits(), 0);
        assert_eq!(P8E1::from_f64(P8E1::minpos()).fraction_bits(), 0);
    }

    #[test]
    fn negation_involution() {
        for p in P8E1::all_finite() {
            assert_eq!(p.negated().negated().bits(), p.bits());
            if !p.is_zero() {
                assert_eq!(p.negated().to_f64(), -p.to_f64());
            }
        }
    }

    #[test]
    fn arithmetic() {
        let a = P8E1::from_f64(1.5);
        let b = P8E1::from_f64(2.0);
        assert_eq!((a * b).to_f64(), 3.0);
        assert_eq!((a + b).to_f64(), 3.5);
        assert_eq!((b - a).to_f64(), 0.5);
        assert_eq!((a / b).to_f64(), 0.75);
        assert!((P8E1::NAR + a).is_nar());
        assert!((a / P8E1::ZERO).is_nar());
    }

    #[test]
    fn quantize_is_idempotent() {
        for p in P8E1::all_finite() {
            let v = p.to_f64();
            assert_eq!(P8E1::quantize(P8E1::quantize(v)), P8E1::quantize(v));
        }
    }

    #[test]
    fn p8e2_wider_range_fewer_bits_near_one() {
        // Posit(8,2) trades fraction bits near 1 for range (§4.3).
        assert_eq!(P8E2::from_f64(1.3).fraction_bits(), 3);
        assert_eq!(P8E1::from_f64(1.3).fraction_bits(), 4);
        assert!(P8E2::maxpos() > P8E1::maxpos());
    }
}
