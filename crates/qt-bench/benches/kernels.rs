//! Criterion micro-benchmarks of the numerical kernels: posit
//! encode/decode, LUT fake-quantization, the approximate vs exact softmax,
//! fused (quire) dot products, and the systolic-array simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use qt_accel::{Accelerator, Datapath, SystolicSim};
use qt_posit::approx::{fast_reciprocal, fast_sigmoid, ExpApprox};
use qt_posit::{FusedDot, P8E1};
use qt_quant::{ElemFormat, FakeQuant};
use qt_tensor::Tensor;
use qt_transformer::Softmax;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn bench_posit_codec(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let values: Vec<f64> = (0..1024).map(|_| rng.gen_range(-100.0..100.0)).collect();
    c.bench_function("posit8_encode_1k", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for &v in &values {
                acc ^= P8E1::from_f64(black_box(v)).bits();
            }
            acc
        })
    });
    let codes: Vec<P8E1> = (0..=255u16).map(P8E1::from_bits).collect();
    c.bench_function("posit8_decode_256", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &p in &codes {
                let v = p.to_f64();
                if v.is_finite() {
                    acc += v;
                }
            }
            acc
        })
    });
}

fn bench_fake_quant(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let t = Tensor::randn(&[64, 64], &mut rng);
    for fmt in [ElemFormat::P8E1, ElemFormat::E4M3, ElemFormat::Bf16] {
        let q = FakeQuant::new(fmt);
        c.bench_function(&format!("fake_quant_4k_{}", fmt.name()), |b| {
            b.iter(|| q.quantize(black_box(&t)))
        });
    }
    // LUT path vs direct scalar encode
    let q = FakeQuant::new(ElemFormat::P8E1);
    c.bench_function("quant_scalar_lut_posit8", |b| {
        b.iter(|| q.quantize_scalar(black_box(1.2345)))
    });
    c.bench_function("quant_scalar_direct_posit8", |b| {
        b.iter(|| ElemFormat::P8E1.quantize_scalar(black_box(1.2345)))
    });
}

fn bench_softmax(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let scores = Tensor::randn(&[32, 32], &mut rng).mul_scalar(3.0);
    let exact = Softmax::new(qt_quant::SoftmaxKind::Exact);
    let approx = Softmax::new(qt_quant::SoftmaxKind::posit_full());
    c.bench_function("softmax_exact_32x32", |b| {
        b.iter(|| exact.forward(black_box(&scores)))
    });
    c.bench_function("softmax_posit_approx_32x32", |b| {
        b.iter(|| approx.forward(black_box(&scores)))
    });
}

fn bench_approx_ops(c: &mut Criterion) {
    let xs: Vec<P8E1> = (0..=255u16).map(P8E1::from_bits).collect();
    c.bench_function("fast_sigmoid_256", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for &x in &xs {
                acc ^= fast_sigmoid(black_box(x)).bits();
            }
            acc
        })
    });
    c.bench_function("fast_reciprocal_256", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for &x in &xs {
                acc ^= fast_reciprocal(black_box(x)).bits();
            }
            acc
        })
    });
    let cfg = ExpApprox::PAPER_BEST;
    c.bench_function("exp_approx_256", |b| {
        b.iter(|| {
            let mut acc = 0u16;
            for &x in &xs {
                acc ^= cfg.eval_p8(black_box(x)).bits();
            }
            acc
        })
    });
}

fn bench_quire(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let a: Vec<P8E1> = (0..256).map(|_| P8E1::from_f64(rng.gen_range(-2.0..2.0))).collect();
    let b2: Vec<P8E1> = (0..256).map(|_| P8E1::from_f64(rng.gen_range(-2.0..2.0))).collect();
    c.bench_function("quire_fused_dot_256", |b| {
        b.iter(|| FusedDot::dot(black_box(&a), black_box(&b2)))
    });
}

fn bench_matmul_and_sim(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let a = Tensor::randn(&[32, 64], &mut rng);
    let b2 = Tensor::randn(&[64, 32], &mut rng);
    c.bench_function("tensor_matmul_32x64x32", |b| {
        b.iter(|| black_box(&a).matmul(black_box(&b2)))
    });
    let sim = SystolicSim::new(Accelerator::new(16, Datapath::Posit8));
    c.bench_function("systolic_sim_gemm_256", |b| {
        b.iter(|| sim.gemm(black_box(256), 256, 256))
    });
}

fn quick_config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(900))
}

criterion_group! {
    name = benches;
    config = quick_config();
    targets = bench_posit_codec,
        bench_fake_quant,
        bench_softmax,
        bench_approx_ops,
        bench_quire,
        bench_matmul_and_sim
}
criterion_main!(benches);
