//! **Integrity bench**: storage-rot campaign over the ECC-shielded
//! fleet, measuring silent-corruption exposure with and without the
//! qt-shield SEC-DED plane.
//!
//! Two legs run against the same deterministic discrete-event fleet
//! (virtual clock, real qt-par forward passes, no crashes — storage
//! rot is the only fault environment):
//!
//! * **protected** — every replica carries a SEC-DED parity plane over
//!   its packed quantized codes; a background scrubber injects and then
//!   corrects persistent bit flips at `--ber` per bit per scrub window.
//! * **quiet** — the same shielded fleet at BER 0: the scrubber must
//!   walk storage without ever finding (or inventing) work.
//!
//! After each leg, every served-primary response is replay-audited
//! (`audit_unflagged_corruption`) — the unflagged-corrupt count must be
//! zero. The injected-flip stream is then replayed *offline* from the
//! same `StorageFaultModel` seed to (a) prove the replay model matches
//! the simulation flip-for-flip and (b) count how many of those flips
//! landed on data bits — exactly the bits that would silently corrupt
//! an unprotected code array. A BER sweep table extends that offline
//! computation across `--bers` for the README.
//!
//! Extra flags beyond the shared harness (`--quick`, `--out`, `--seed`):
//!
//! * `--rps R`, `--duration S`, `--deadline-ms M` — offered load shape
//! * `--replicas N` — fleet width (all replicas share `--format`)
//! * `--format F` — packed element format under protection (must have
//!   a code plane; default `p8e1`)
//! * `--seq N` — tokens per request
//! * `--ber B` — storage BER per bit per scrub window (protected leg;
//!   default 1e-6)
//! * `--scrub-ms M` — scrub window width (default 5 ms)
//! * `--scrub-budget W` — words per scrub pass (0 = full pass)
//! * `--repair-us-per-word U` — repair latency model
//! * `--bers A,B,..` — offline BER sweep points for the README table
//! * `--expect-scrub` — CI assertions for the protected leg: flips were
//!   injected, the scrubber corrected ≥99% of them (counting the two+
//!   bits of each quarantined-and-repaired word as handled), and zero
//!   responses replayed corrupt
//! * `--expect-quiet` — CI assertions for the quiet leg: zero flips,
//!   corrections, quarantines, and repairs
//!
//! Identical seed and flags ⇒ byte-identical `BENCH_integrity.json` at
//! any `QT_THREADS`.

use std::collections::{HashMap, HashSet};

use qt_fleet::{
    audit_unflagged_corruption, run_fleet_observed, ArrivalShape, DirSnapStore, FleetConfig,
    FleetLoadSpec, FleetReport, ReplicaSpec, RouterPolicy, ShieldConfig,
};
use qt_quant::ElemFormat;
use qt_robust::{FaultSource, NoFaults, StorageFaultModel};
use qt_telemetry::Scope;
use qt_transformer::{Model, TaskHead, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};

/// splitmix64 step — the standard seed-spreading finalizer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-leg arrival seed: fold the leg name into the base seed so the
/// two legs replay independent (but reproducible) request streams.
fn leg_seed(base: u64, name: &str) -> u64 {
    let mut x = base;
    for b in name.bytes() {
        x = splitmix64(x ^ u64::from(b));
    }
    splitmix64(x)
}

/// SEC-DED codeword width — must mirror `qt_shield::CODE_BITS`, which
/// qt-bench reaches only transitively. The offline replay asserts its
/// flip counts against the simulation, so a drift here fails loudly.
const CODE_BITS: u64 = 72;
/// Data bits per codeword (the rest are out-of-band check bits).
const DATA_BITS: u64 = 64;

/// Offline replay of one replica's persistent-rot stream: the same
/// `StorageFaultModel` windows the simulation drew, folded three ways.
#[derive(Debug, Default, Clone)]
struct RotReplay {
    /// Total flips drawn (must equal the sim's `storage_flips`).
    flips: u64,
    /// Bits left in error on an *unprotected* code array at the end of
    /// the run: cumulative XOR over all windows, data bits only (check
    /// bits do not exist without the shield).
    silent_data_bits: u64,
    /// Per-window words with exactly one bit in error — the SEC-DED
    /// scrubber corrects these in place.
    correctable_words: u64,
    /// Per-window words with two or more bits in error — detected,
    /// quarantined, and repaired from the f32 masters; never silent.
    uncorrectable_words: u64,
}

/// Replay `windows` scrub windows of rot for one replica.
fn replay_rot(seed: u64, ber: f64, replica: usize, windows: u64, total_bits: u64) -> RotReplay {
    let mut model = StorageFaultModel::new(seed, ber);
    let mut out = RotReplay::default();
    // Unprotected array: persistent flips accumulate across the whole
    // run; a bit hit twice flips back.
    let mut live: HashSet<u64> = HashSet::new();
    for w in 0..windows {
        let flips = model.window_flips(replica, w, total_bits);
        out.flips += flips.len() as u64;
        // Protected array: the scrubber cleans between windows, so each
        // window's error pattern stands alone. Group by word and count
        // bits left at odd parity.
        let mut by_word: HashMap<u64, Vec<u64>> = HashMap::new();
        for &bit in &flips {
            if bit % CODE_BITS < DATA_BITS && !live.remove(&bit) {
                live.insert(bit);
            }
            by_word.entry(bit / CODE_BITS).or_default().push(bit);
        }
        for bits in by_word.values() {
            let mut odd: HashSet<u64> = HashSet::new();
            for &b in bits {
                if !odd.remove(&b) {
                    odd.insert(b);
                }
            }
            match odd.len() {
                0 => {}
                1 => out.correctable_words += 1,
                _ => out.uncorrectable_words += 1,
            }
        }
    }
    out.silent_data_bits = live.len() as u64;
    out
}

/// Sum a fleet-scope telemetry counter over the whole run.
fn tel_total(sink: &qt_telemetry::TelemetrySink, name: &str) -> u64 {
    sink.series_get(Scope::Fleet, name)
        .map(|s| s.counter_total())
        .unwrap_or(0)
}

fn main() {
    let opts = qt_bench::Opts::parse();
    let mut rps = 60.0f64;
    let mut duration_s = if opts.quick { 1.5 } else { 4.0 };
    let mut deadline_ms = 60u64;
    let mut n_replicas = 2usize;
    let mut format = ElemFormat::P8E1;
    let mut seq = 8usize;
    let mut ber = 1e-6f64;
    let mut scrub_ms = 5u64;
    let mut scrub_budget = 0usize;
    let mut repair_us_per_word = 1u64;
    let mut sweep_bers = vec![1e-7f64, 1e-6, 1e-5, 1e-4];
    let mut expect_scrub = false;
    let mut expect_quiet = false;

    let mut it = opts.extra.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rps" => {
                if let Some(v) = it.next() {
                    rps = v.parse().unwrap_or(rps);
                }
            }
            "--duration" => {
                if let Some(v) = it.next() {
                    duration_s = v.parse().unwrap_or(duration_s);
                }
            }
            "--deadline-ms" => {
                if let Some(v) = it.next() {
                    deadline_ms = v.parse().unwrap_or(deadline_ms);
                }
            }
            "--replicas" => {
                if let Some(v) = it.next() {
                    n_replicas = v.parse().unwrap_or(n_replicas);
                }
            }
            "--format" => {
                if let Some(v) = it.next() {
                    if let Some(f) = ElemFormat::parse(v) {
                        format = f;
                    }
                }
            }
            "--seq" => {
                if let Some(v) = it.next() {
                    seq = v.parse().unwrap_or(seq);
                }
            }
            "--ber" => {
                if let Some(v) = it.next() {
                    ber = v.parse().unwrap_or(ber);
                }
            }
            "--scrub-ms" => {
                if let Some(v) = it.next() {
                    scrub_ms = v.parse().unwrap_or(scrub_ms);
                }
            }
            "--scrub-budget" => {
                if let Some(v) = it.next() {
                    scrub_budget = v.parse().unwrap_or(scrub_budget);
                }
            }
            "--repair-us-per-word" => {
                if let Some(v) = it.next() {
                    repair_us_per_word = v.parse().unwrap_or(repair_us_per_word);
                }
            }
            "--bers" => {
                if let Some(v) = it.next() {
                    let parsed: Vec<f64> =
                        v.split(',').filter_map(|b| b.parse().ok()).collect();
                    if !parsed.is_empty() {
                        sweep_bers = parsed;
                    }
                }
            }
            "--expect-scrub" => expect_scrub = true,
            "--expect-quiet" => expect_quiet = true,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }

    let model_cfg = TransformerConfig::mobilebert_tiny_sim();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let model = Model::new(model_cfg, TaskHead::Classify(2), &mut rng);
    let vocab = model.cfg.vocab;
    let duration_us = (duration_s * 1e6) as u64;
    let n_replicas = n_replicas.max(1);

    // Fail fast on formats without a packed code plane: there is
    // nothing for the shield to protect.
    let total_bits = qt_serve::shield_model(&model, format)
        .unwrap_or_else(|| panic!("--format {}: no packed code plane to shield", format.name()))
        .total_bits();
    let storage_seed = splitmix64(opts.seed ^ 0x0005_1e1d);
    let scrub_every_us = scrub_ms.max(1) * 1_000;
    let shield_cfg = |leg_ber: f64| ShieldConfig {
        scrub_every_us,
        scrub_budget_words: if scrub_budget == 0 {
            usize::MAX
        } else {
            scrub_budget
        },
        storage_ber: leg_ber,
        storage_seed,
        repair_us_per_word,
    };

    eprintln!(
        "[integrity_bench] {rps} rps over {duration_s}s, {n_replicas}x {} replicas, \
         {total_bits} protected bits each, scrub every {scrub_ms} ms, ber {ber:e}",
        format.name()
    );

    std::fs::create_dir_all(&opts.out_dir).expect("create output dir");
    let legs: [(&str, f64); 2] = [("protected", ber), ("quiet", 0.0)];
    let mut leg_docs: Vec<serde_json::Value> = Vec::new();
    let mut leg_reports: Vec<(&str, f64, FleetReport, u64)> = Vec::new();
    let mut scrub_windows = 0u64;
    for (name, leg_ber) in legs {
        let arrival_seed = leg_seed(opts.seed, name);
        let requests = FleetLoadSpec {
            rps,
            duration_us,
            shape: ArrivalShape::Constant,
            period_us: duration_us.max(1),
            users: 100_000,
            tenants: 1,
            deadline_us: deadline_ms.saturating_mul(1_000),
            seq,
            seed: arrival_seed,
        }
        .requests(vocab);
        let cfg = FleetConfig {
            replicas: vec![ReplicaSpec::new(format); n_replicas],
            policy: RouterPolicy::HealthAware,
            tenants: 1,
            tenant_quota: 0,
            max_failovers: 3,
            hedge: true,
            snapshot_every_us: 100_000,
            retry_seed: opts.seed,
            adapt_every_us: 0,
            codel: None,
            brownout: None,
            gray: None,
            autoscale: None,
            shield: Some(shield_cfg(leg_ber)),
        };
        let faults = |n: usize| -> Vec<Box<dyn FaultSource + Send + Sync>> {
            (0..n).map(|_| Box::new(NoFaults) as _).collect()
        };
        let snap_dir = opts.out_dir.join(format!("integrity_snaps_{name}"));
        let lopts = opts.scoped(name);
        let trace = lopts.open_trace(&format!("integrity_bench_{name}"));
        let tel = qt_telemetry::TelemetrySink::handle(
            qt_telemetry::TelemetryConfig {
                seed: opts.seed,
                ..qt_telemetry::TelemetryConfig::default()
            },
            cfg.replicas.len(),
        );
        let report = run_fleet_observed(
            &model,
            &cfg,
            &requests,
            faults(n_replicas),
            Box::new(DirSnapStore::new(&snap_dir)),
            trace.as_ref(),
            Some(&tel),
        );
        if let Some(t) = trace.as_ref() {
            qt_telemetry::export_to_trace(&tel.borrow(), &mut t.borrow_mut());
        }
        lopts.close_trace(trace);
        assert!(
            report.reconciles(),
            "{name}: outcome counters must reconcile to offered load"
        );
        let unflagged =
            audit_unflagged_corruption(&model, &cfg, &requests, faults(n_replicas), &report);
        assert_eq!(
            unflagged, 0,
            "{name}: served-primary responses must replay clean — the shield \
             exists precisely so storage rot is never silent"
        );

        // Offline rot replay: same seed, same window count the DES used
        // (ticks fire every scrub window; the one at/after the last
        // arrival scrubs without injecting).
        let last_arrival = requests.last().map(|r| r.req.arrival_us).unwrap_or(0);
        let windows = if last_arrival == 0 {
            0
        } else {
            (last_arrival - 1) / scrub_every_us
        };
        scrub_windows = windows;
        let mut replay = RotReplay::default();
        for r in 0..n_replicas {
            let one = replay_rot(storage_seed, leg_ber, r, windows, total_bits);
            assert_eq!(
                one.flips,
                report.replicas[r].stats.storage_flips,
                "{name}: offline rot replay must match the simulation flip-for-flip \
                 (replica {r})"
            );
            replay.flips += one.flips;
            replay.silent_data_bits += one.silent_data_bits;
            replay.correctable_words += one.correctable_words;
            replay.uncorrectable_words += one.uncorrectable_words;
        }

        let sink = tel.borrow();
        let tel_doc = serde_json::json!({
            "scrub.corrected": tel_total(&sink, "scrub.corrected"),
            "scrub.read_corrected": tel_total(&sink, "scrub.read_corrected"),
            "scrub.uncorrectable": tel_total(&sink, "scrub.uncorrectable"),
            "scrub.quarantines": tel_total(&sink, "scrub.quarantines"),
            "scrub.repairs": tel_total(&sink, "scrub.repairs"),
        });
        drop(sink);
        // Handled = corrected in place + the ≥2 bits of each word whose
        // double-bit detection was quarantined and repaired bit-exact.
        let handled = report.scrub_corrected + 2 * report.quarantines;
        let coverage = if report.storage_flips == 0 {
            serde_json::Value::Null
        } else {
            serde_json::json!(handled as f64 / report.storage_flips as f64)
        };
        eprintln!(
            "[integrity_bench] {name}: {} requests, flips {}, scrubbed {}, read-corrected {}, \
             quarantines {}, repairs {}, unflagged corrupt {unflagged}, \
             unprotected would hold {} silent bad bits",
            requests.len(),
            report.storage_flips,
            report.scrub_corrected,
            report.read_corrected,
            report.quarantines,
            report.repairs,
            replay.silent_data_bits,
        );
        leg_docs.push(serde_json::json!({
            "leg": name,
            "ber": leg_ber,
            "arrival_seed": arrival_seed,
            "requests": requests.len(),
            "offered": report.offered,
            "served_primary": report.served_primary,
            "served_degraded": report.served_degraded,
            "deadline_miss": report.deadline_miss,
            "storage_flips": report.storage_flips,
            "scrub_corrected": report.scrub_corrected,
            "read_corrected": report.read_corrected,
            "scrub_uncorrectable": report.scrub_uncorrectable,
            "quarantines": report.quarantines,
            "repairs": report.repairs,
            "scrub_coverage": coverage,
            "unflagged_corrupt": unflagged,
            "silent_without_protection": replay.silent_data_bits,
            "replayed_correctable_words": replay.correctable_words,
            "replayed_uncorrectable_words": replay.uncorrectable_words,
            "integrity_events": report
                .integrity_events
                .iter()
                .map(|e| e.to_json())
                .collect::<Vec<_>>(),
            "telemetry": tel_doc,
        }));
        leg_reports.push((name, leg_ber, report, unflagged));
    }

    // BER sweep: the offline model across magnitudes, same seed and
    // window count as the measured legs — the README exposure table.
    let sweep: Vec<serde_json::Value> = sweep_bers
        .iter()
        .map(|&b| {
            let mut tot = RotReplay::default();
            for r in 0..n_replicas {
                let one = replay_rot(storage_seed, b, r, scrub_windows, total_bits);
                tot.flips += one.flips;
                tot.silent_data_bits += one.silent_data_bits;
                tot.correctable_words += one.correctable_words;
                tot.uncorrectable_words += one.uncorrectable_words;
            }
            serde_json::json!({
                "ber": b,
                "flips": tot.flips,
                "silent_without_protection": tot.silent_data_bits,
                "correctable_words": tot.correctable_words,
                "uncorrectable_words": tot.uncorrectable_words,
            })
        })
        .collect();

    if expect_scrub {
        let (_, _, report, _) = &leg_reports[0];
        assert!(
            report.storage_flips > 0,
            "--expect-scrub: no storage rot was injected — raise --ber, --duration, \
             or the scrub frequency"
        );
        assert!(
            report.scrub_corrected > 0,
            "--expect-scrub: the scrubber never corrected a flip"
        );
        let handled = report.scrub_corrected + 2 * report.quarantines;
        let coverage = handled as f64 / report.storage_flips as f64;
        assert!(
            coverage >= 0.99,
            "--expect-scrub: scrub coverage {coverage:.4} < 0.99 \
             ({} corrected + {} quarantined of {} flips)",
            report.scrub_corrected,
            report.quarantines,
            report.storage_flips
        );
        assert_eq!(
            report.quarantines, report.repairs,
            "--expect-scrub: every quarantine must complete its repair"
        );
        eprintln!("[integrity_bench] scrub invariants hold (coverage {coverage:.4})");
    }
    if expect_quiet {
        let (_, _, report, _) = &leg_reports[1];
        assert_eq!(
            report.storage_flips
                + report.scrub_corrected
                + report.read_corrected
                + report.scrub_uncorrectable
                + report.quarantines
                + report.repairs,
            0,
            "--expect-quiet: the shield acted on a rot-free run"
        );
        eprintln!("[integrity_bench] quiet leg stayed quiet, as expected");
    }

    let doc = serde_json::json!({
        "schema": "qt-shield/bench/v1",
        "bench": "integrity_bench",
        "seed": opts.seed,
        "rps": rps,
        "duration_s": duration_s,
        "deadline_ms": deadline_ms,
        "replicas": n_replicas,
        "format": format.name(),
        "seq": seq,
        "ber": ber,
        "scrub_ms": scrub_ms,
        "scrub_budget_words": scrub_budget,
        "repair_us_per_word": repair_us_per_word,
        "storage_seed": storage_seed,
        "protected_bits_per_replica": total_bits,
        "scrub_windows": scrub_windows,
        "legs": leg_docs,
        "ber_sweep": sweep,
    });
    let path = opts.out_dir.join("BENCH_integrity.json");
    let mut text = serde_json::to_string_pretty(&doc).expect("serializable");
    text.push('\n');
    // Atomic write (qt-ckpt): a crash here never leaves a torn report.
    qt_ckpt::atomic_write_str(&path, &text).expect("write BENCH_integrity.json");
    eprintln!("[integrity_bench] wrote {}", path.display());
}
