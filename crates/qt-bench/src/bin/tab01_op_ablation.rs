//! **Table 1**: accuracy impact of quantizing GEMM plus exactly one other
//! operation class to Posit(8,1), on the MobileBERT-style and BERT-style
//! encoders (synthetic SQuAD F1).
//!
//! Reproduction target: the ordering of sensitivity — attention scaling
//! worst, then activations, layer norm, residual — and MobileBERT being
//! the more fragile model.

use qt_bench::{pretrain_span, span_task_for, Opts, Table};
use qt_quant::{OpClass, OpSet, QuantScheme};
use qt_train::evaluate_span_f1;
use qt_transformer::{QuantCtx, TransformerConfig};

fn main() {
    let opts = Opts::parse();
    let steps = opts.pick(900, 120);
    let eval_n = opts.pick(384, 64);

    let mut table = Table::new(
        "Table 1: quantizing GEMM + one op class to Posit(8,1), F1 on synthetic SQuAD",
        &["Operations", "MobileBERT-sim", "BERT_base-sim"],
    );

    let configs = [
        TransformerConfig::mobilebert_sim(),
        TransformerConfig::bert_base_sim(),
    ];
    let mut models = Vec::new();
    for cfg in &configs {
        let task = span_task_for(cfg);
        eprintln!("[tab01] pretraining {}…", cfg.name);
        let model = pretrain_span(cfg, &task, steps, opts.seed);
        let eval = task.dataset(eval_n, opts.seed ^ 0xEEE);
        models.push((model, task, eval));
    }

    let rows: Vec<(&str, Option<OpSet>)> = vec![
        ("BF16", None),
        ("GEMM", Some(OpSet::GEMM_ONLY)),
        ("GEMM + Residual", Some(OpSet::gemm_plus(OpClass::Residual))),
        ("GEMM + LayerNorm", Some(OpSet::gemm_plus(OpClass::LayerNorm))),
        ("GEMM + Activation", Some(OpSet::gemm_plus(OpClass::Activation))),
        (
            "GEMM + Attn Scaling",
            Some(OpSet::gemm_plus(OpClass::AttnScaling)),
        ),
    ];

    for (label, ops) in rows {
        let mut cells = vec![label.to_string()];
        for (model, task, eval) in &models {
            let scheme = match ops {
                None => QuantScheme::bf16(),
                Some(set) => QuantScheme::posit8().with_ops(set),
            };
            let f1 = evaluate_span_f1(model, &QuantCtx::inference(scheme), task, eval, 32);
            cells.push(format!("{f1:.1}"));
        }
        table.row(&cells);
    }

    table.print();
    table
        .write_json(&opts.out_dir, "tab01_op_ablation")
        .expect("write results");
}
