//! **Figure 13**: full-accelerator area and power (standard cells + SRAM
//! macros) at 200 MHz / 0.9 V, for 8×8, 16×16 and 32×32 arrays across all
//! five datapaths, with the component breakdown.
//!
//! Reproduction target: Posit8 ≈ 30% smaller / 26% lower power than BF16,
//! FP8 ≈ 34% / 32%; FP8 keeps a small edge over Posit8 overall while the
//! Posit8 vector unit is the smaller of the two.

use qt_accel::{Accelerator, Datapath, SynthesisPoint, Tech40};
use qt_bench::{Opts, Table};

fn main() {
    let opts = Opts::parse();
    let tech = Tech40::default();
    let pt = SynthesisPoint::nominal();

    let mut table = Table::new(
        "Figure 13: accelerator area (mm2) / power (mW) at 200 MHz, 0.9 V",
        &[
            "Size", "Datapath", "Array", "Vector", "Codecs", "SRAM", "Total area", "Total power",
            "vs BF16",
        ],
    );
    for n in [8u32, 16, 32] {
        let bf_total = Accelerator::new(n, Datapath::Bf16).synth(&tech, pt).total();
        for d in Datapath::ALL {
            let r = Accelerator::new(n, d).synth(&tech, pt);
            let t = r.total();
            table.row(&[
                format!("{n}x{n}"),
                d.name().into(),
                format!("{:.3}", r.array.area_mm2),
                format!("{:.3}", r.vector.area_mm2),
                format!("{:.3}", r.codecs.area_mm2),
                format!("{:.3}", r.sram.area_mm2),
                format!("{:.3}", t.area_mm2),
                format!("{:.1}", t.power_mw),
                format!("{:+.1}%", 100.0 * (t.area_mm2 / bf_total.area_mm2 - 1.0)),
            ]);
        }
    }
    table.print();

    // headline averages
    let mut p8a = 0.0;
    let mut p8p = 0.0;
    let mut f8a = 0.0;
    let mut f8p = 0.0;
    for n in [8u32, 16, 32] {
        let bf = Accelerator::new(n, Datapath::Bf16).synth(&tech, pt).total();
        let p8 = Accelerator::new(n, Datapath::Posit8).synth(&tech, pt).total();
        let f8 = Accelerator::new(n, Datapath::HybridFp8).synth(&tech, pt).total();
        p8a += 1.0 - p8.area_mm2 / bf.area_mm2;
        p8p += 1.0 - p8.power_mw / bf.power_mw;
        f8a += 1.0 - f8.area_mm2 / bf.area_mm2;
        f8p += 1.0 - f8.power_mw / bf.power_mw;
    }
    println!(
        "average vs BF16: Posit8 area -{:.0}% power -{:.0}% (paper 30/26); FP8 area -{:.0}% power -{:.0}% (paper 34/32)",
        100.0 * p8a / 3.0,
        100.0 * p8p / 3.0,
        100.0 * f8a / 3.0,
        100.0 * f8p / 3.0
    );
    table
        .write_json(&opts.out_dir, "fig13_accel_area_power")
        .expect("write results");
}
