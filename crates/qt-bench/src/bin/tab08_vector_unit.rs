//! **Table 8**: vector-unit area and power, Posit8 vs hybrid FP8, at 8,
//! 16 and 32 lanes (200 MHz, 0.9 V), including the posit boundary codecs
//! in the Posit8 column.
//!
//! Reproduction target: Posit8 vector unit ≈ 33% smaller and ≈ 35% lower
//! power on average.

use qt_accel::{SynthesisPoint, Tech40, VectorUnit};
use qt_bench::{Opts, Table};

fn main() {
    let opts = Opts::parse();
    let tech = Tech40::default();
    let pt = SynthesisPoint::nominal();

    let mut table = Table::new(
        "Table 8: vector unit metrics, Posit8 vs hybrid FP8 (200 MHz, 0.9 V)",
        &[
            "Size",
            "Area P8 (mm2)",
            "Area FP8 (mm2)",
            "Area red.",
            "Power P8 (mW)",
            "Power FP8 (mW)",
            "Power red.",
        ],
    );

    let mut area_sum = 0.0;
    let mut pow_sum = 0.0;
    for lanes in [8u32, 16, 32] {
        let p8 = VectorUnit::posit8_style(lanes).synth(&tech, pt);
        let fp8 = VectorUnit::fp8_style(lanes).synth(&tech, pt);
        let ar = 1.0 - p8.area_mm2 / fp8.area_mm2;
        let pr = 1.0 - p8.power_mw / fp8.power_mw;
        area_sum += ar;
        pow_sum += pr;
        table.row(&[
            format!("{lanes}-lane"),
            format!("{:.3}", p8.area_mm2),
            format!("{:.3}", fp8.area_mm2),
            format!("{:.1}%", 100.0 * ar),
            format!("{:.2}", p8.power_mw),
            format!("{:.2}", fp8.power_mw),
            format!("{:.1}%", 100.0 * pr),
        ]);
    }
    table.row(&[
        "Average".into(),
        "-".into(),
        "-".into(),
        format!("{:.1}%", 100.0 * area_sum / 3.0),
        "-".into(),
        "-".into(),
        format!("{:.1}%", 100.0 * pow_sum / 3.0),
    ]);

    table.print();
    table
        .write_json(&opts.out_dir, "tab08_vector_unit")
        .expect("write results");
}
