//! **Figure 8**: exponential-unit area and post-synthesis power vs target
//! frequency (0.9 V), for BF16/FP16 exact units and posit8/posit16
//! approximate units.
//!
//! Reproduction target: at 200 MHz the posit16 approximate unit is
//! substantially (paper: 62%) smaller and lower power (44%) than BF16, and
//! all curves grow with frequency.

use qt_accel::{ExpUnit, SynthesisPoint, Tech40};
use qt_bench::{Opts, Table};

fn main() {
    let opts = Opts::parse();
    let tech = Tech40::default();
    let units: [(&str, ExpUnit); 4] = [
        ("BF16 exact", ExpUnit::bf16_exact()),
        ("FP16 exact", ExpUnit::fp16_exact()),
        ("Posit16 approx", ExpUnit::posit16_approx()),
        ("Posit8 approx", ExpUnit::posit8_approx()),
    ];

    let mut table = Table::new(
        "Figure 8: exponential unit area (um2) / power (uW) vs frequency",
        &["Freq (MHz)", "BF16", "FP16", "Posit16~", "Posit8~"],
    );
    for f in [100.0, 200.0, 300.0, 400.0, 500.0] {
        let pt = SynthesisPoint {
            freq_mhz: f,
            fmax_mhz: 800.0,
        };
        let mut cells = vec![format!("{f}")];
        for (_, u) in &units {
            let ap = u.synth(&tech, pt);
            cells.push(format!(
                "{:.0}/{:.1}",
                ap.area_mm2 * 1e6,
                ap.power_mw * 1e3
            ));
        }
        table.row(&cells);
    }
    table.print();

    let pt = SynthesisPoint::nominal();
    let bf = ExpUnit::bf16_exact().synth(&tech, pt);
    let p16 = ExpUnit::posit16_approx().synth(&tech, pt);
    println!(
        "at 200 MHz: posit16 approx is {:.0}% smaller, {:.0}% lower power than BF16 (paper: 62%, 44%)",
        100.0 * (1.0 - p16.area_mm2 / bf.area_mm2),
        100.0 * (1.0 - p16.power_mw / bf.power_mw)
    );
    table
        .write_json(&opts.out_dir, "fig08_exp_area_power")
        .expect("write results");
}
