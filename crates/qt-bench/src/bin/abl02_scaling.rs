//! **Ablation 2** (design choice, §5.1): gradient scaling during 8-bit
//! fine-tuning — none vs global loss scale vs delayed per-tensor amax
//! scaling — and the amax-history length.
//!
//! Reproduction target: no scaling underflows most activation gradients;
//! a loss scale recovers most accuracy; per-tensor scaling matches BF16.

use qt_bench::{classify_task_for, lora_finetune_classify, pretrain_classify, Opts, Table};
use qt_datagen::ClassifyKind;
use qt_quant::{QuantScheme, ScalingMode};
use qt_train::evaluate_classify;
use qt_transformer::{LoraConfig, QuantCtx, TransformerConfig};

fn main() {
    let opts = Opts::parse();
    let pre_steps = opts.pick(500, 80);
    let ft_steps = opts.pick(250, 40);
    let eval_n = opts.pick(256, 64);

    let cfg = TransformerConfig::mobilebert_sim();
    let task = classify_task_for(&cfg, ClassifyKind::Sst2);
    eprintln!("[abl02] pretraining {}…", cfg.name);
    let pretrained = pretrain_classify(&cfg, &task, pre_steps, opts.seed);
    let lora = LoraConfig::mobilebert_default();

    let modes: [(&str, ScalingMode); 5] = [
        ("none", ScalingMode::None),
        ("loss scale 256", ScalingMode::LossScale(256.0)),
        ("per-tensor, history 1", ScalingMode::PerTensorAmax { history: 1 }),
        ("per-tensor, history 16", ScalingMode::PerTensorAmax { history: 16 }),
        ("per-tensor, history 64", ScalingMode::PerTensorAmax { history: 64 }),
    ];

    let mut table = Table::new(
        "Ablation: gradient scaling during Posit8 LoRA fine-tuning (SST-2-like acc %)",
        &["Scaling", "Posit8 acc", "BF16 reference"],
    );
    // BF16 reference once
    let bf16 = {
        let model = lora_finetune_classify(
            &pretrained,
            &task,
            QuantScheme::bf16(),
            lora,
            ft_steps,
            2e-3,
            opts.seed,
            None,
            opts.ckpt_spec("abl02-bf16-reference").as_ref(),
        );
        let eval = task.dataset(eval_n, opts.seed ^ 0xEEE);
        let batches: Vec<_> = eval.chunks(32).map(|c| task.batch(c)).collect();
        evaluate_classify(&model, &QuantCtx::inference(QuantScheme::bf16()), &batches)
    };
    for (mi, (name, scaling)) in modes.into_iter().enumerate() {
        let scheme = QuantScheme::posit8().with_scaling(scaling);
        let model = lora_finetune_classify(
            &pretrained,
            &task,
            scheme,
            lora,
            ft_steps,
            2e-3,
            opts.seed,
            None,
            opts.ckpt_spec(&format!("abl02-posit8-mode{mi}")).as_ref(),
        );
        let eval = task.dataset(eval_n, opts.seed ^ 0xEEE);
        let batches: Vec<_> = eval.chunks(32).map(|c| task.batch(c)).collect();
        let acc = evaluate_classify(&model, &QuantCtx::inference(scheme), &batches);
        table.row(&[name.into(), format!("{acc:.1}"), format!("{bf16:.1}")]);
    }

    table.print();
    table
        .write_json(&opts.out_dir, "abl02_scaling")
        .expect("write results");
}
