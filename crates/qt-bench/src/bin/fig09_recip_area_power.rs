//! **Figure 9**: reciprocal-unit area and power vs target frequency —
//! float dividers vs the posit NOT-gate reciprocal.
//!
//! Reproduction target: at 200 MHz the posit16 approximate reciprocal is
//! ~85% smaller and ~75% lower power than the BF16 divider.

use qt_accel::{RecipUnit, SynthesisPoint, Tech40};
use qt_bench::{Opts, Table};

fn main() {
    let opts = Opts::parse();
    let tech = Tech40::default();
    let units: [(&str, RecipUnit); 4] = [
        ("BF16 divider", RecipUnit::bf16_divider()),
        ("FP16 divider", RecipUnit::fp16_divider()),
        ("Posit16 approx", RecipUnit::posit16_approx()),
        ("Posit8 approx", RecipUnit::posit8_approx()),
    ];

    let mut table = Table::new(
        "Figure 9: reciprocal unit area (um2) / power (uW) vs frequency",
        &["Freq (MHz)", "BF16", "FP16", "Posit16~", "Posit8~"],
    );
    for f in [100.0, 200.0, 300.0, 400.0, 500.0] {
        let pt = SynthesisPoint {
            freq_mhz: f,
            fmax_mhz: 800.0,
        };
        let mut cells = vec![format!("{f}")];
        for (_, u) in &units {
            let ap = u.synth(&tech, pt);
            cells.push(format!(
                "{:.0}/{:.2}",
                ap.area_mm2 * 1e6,
                ap.power_mw * 1e3
            ));
        }
        table.row(&cells);
    }
    table.print();

    let pt = SynthesisPoint::nominal();
    let bf = RecipUnit::bf16_divider().synth(&tech, pt);
    let p16 = RecipUnit::posit16_approx().synth(&tech, pt);
    println!(
        "at 200 MHz: posit16 approx is {:.0}% smaller, {:.0}% lower power than the BF16 divider (paper: 85%, 75%)",
        100.0 * (1.0 - p16.area_mm2 / bf.area_mm2),
        100.0 * (1.0 - p16.power_mw / bf.power_mw)
    );
    table
        .write_json(&opts.out_dir, "fig09_recip_area_power")
        .expect("write results");
}
