//! **Table 3**: sweeping the approximate-exponential threshold θ
//! ("Accuracy 1": truncation only) and the shift ε derived at each
//! threshold ("Accuracy 2": truncation + shifting), on the MobileBERT-style
//! model. Includes the raw approximation (no threshold), which leaks
//! attention onto masked tokens.
//!
//! Reproduction target: raw << thresholded < thresholded+shifted ≈ BF16,
//! with an interior optimum in θ.

use qt_bench::{pretrain_span, span_task_for, Opts, Table};
use qt_posit::approx::ExpApprox;
use qt_quant::{QuantScheme, SoftmaxKind};
use qt_train::evaluate_span_f1;
use qt_transformer::{QuantCtx, TransformerConfig};

fn main() {
    let opts = Opts::parse();
    let steps = opts.pick(900, 120);
    let eval_n = opts.pick(384, 64);

    let cfg = TransformerConfig::mobilebert_sim();
    let task = span_task_for(&cfg);
    eprintln!("[tab03] pretraining {}…", cfg.name);
    let model = pretrain_span(&cfg, &task, steps, opts.seed);
    let eval = task.dataset(eval_n, opts.seed ^ 0xEEE);

    let f1_with = |exp: ExpApprox| {
        let scheme = QuantScheme::posit8().with_softmax(SoftmaxKind::PositApprox {
            approx_exp: true,
            approx_recip: false,
            exp,
        });
        evaluate_span_f1(&model, &QuantCtx::inference(scheme), &task, &eval, 32)
    };

    let mut table = Table::new(
        "Table 3: approximate-exponential threshold/shift sweep (MobileBERT-sim F1)",
        &["Threshold θ", "ε (derived)", "Accuracy 1 (θ only)", "Accuracy 2 (θ + shift)"],
    );
    table.row(&[
        "none (raw)".into(),
        "-1.0".into(),
        format!("{:.1}", f1_with(ExpApprox::raw())),
        "-".into(),
    ]);
    for theta in [-5.0, -4.0, -3.0, -2.0] {
        let shifted = ExpApprox::shifted(theta);
        table.row(&[
            format!("{theta}"),
            format!("{:.3}", shifted.epsilon),
            format!("{:.1}", f1_with(ExpApprox::thresholded(theta))),
            format!("{:.1}", f1_with(shifted)),
        ]);
    }
    let bf16 = evaluate_span_f1(
        &model,
        &QuantCtx::inference(QuantScheme::bf16()),
        &task,
        &eval,
        32,
    );
    table.row(&["Baseline BF16".into(), "-".into(), format!("{bf16:.1}"), String::new()]);

    table.print();
    table
        .write_json(&opts.out_dir, "tab03_exp_threshold")
        .expect("write results");
}
