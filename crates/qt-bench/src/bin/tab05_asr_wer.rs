//! **Table 5**: word error rate of the Whisper-style encoder-decoder
//! family on the synthetic transcription task, across Posit(8,1),
//! Posit(8,2) and E4M3 at each fusion level.
//!
//! Reproduction target: larger models are more robust to quantization, and
//! fusion generally (not strictly monotonically — the paper observes
//! hallucination noise) improves WER.

use qt_bench::{pretrain_seq2seq, Opts, Table};
use qt_datagen::AsrTask;
use qt_quant::{ElemFormat, FusionLevel, QuantScheme};
use qt_train::evaluate_asr_wer;
use qt_transformer::{QuantCtx, TransformerConfig};

fn main() {
    let opts = Opts::parse();
    let steps = opts.pick(1300, 100);
    let eval_n = opts.pick(96, 24);

    let mut table = Table::new(
        "Table 5: WER (%) on synthetic ASR vs fusion level",
        &[
            "Model", "Data type", "BF16", "No Fusion", "+AttnScal", "+Activation", "+LayerNorm",
            "+Residual",
        ],
    );

    for cfg in [
        TransformerConfig::whisper_tiny_sim(),
        TransformerConfig::whisper_small_sim(),
        TransformerConfig::whisper_large_sim(),
    ] {
        let task = AsrTask::new(cfg.vocab, 24, 6);
        eprintln!("[tab05] pretraining {}…", cfg.name);
        let model = pretrain_seq2seq(&cfg, &task, steps, opts.seed);
        let eval = task.dataset(eval_n, opts.seed ^ 0xEEE);
        let wer = |scheme: QuantScheme| {
            evaluate_asr_wer(&model, &QuantCtx::inference(scheme), &task, &eval, 24)
        };
        let bf16 = wer(QuantScheme::bf16());
        for fmt in [ElemFormat::P8E1, ElemFormat::P8E2, ElemFormat::E4M3] {
            let mut cells = vec![cfg.name.to_string(), fmt.name().to_string(), format!("{bf16:.1}")];
            for level in FusionLevel::ALL {
                let w = wer(QuantScheme::uniform(fmt).with_fusion(level));
                cells.push(format!("{w:.1}"));
            }
            table.row(&cells);
        }
    }

    table.print();
    table
        .write_json(&opts.out_dir, "tab05_asr_wer")
        .expect("write results");
}
