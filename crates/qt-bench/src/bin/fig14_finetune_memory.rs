//! **Figure 14**: MobileBERT-tiny fine-tuning memory after applying LoRA
//! and 8-bit quantization (sequence 128, batch 16, AdamW).
//!
//! Reproduction target: LoRA removes most weight-gradient and optimizer
//! memory at a small parameter overhead; 8-bit halves weights and
//! activations; together ≈ 3× total reduction; activations dominate.

use qt_accel::memory::Precision;
use qt_accel::FinetuneMemoryModel;
use qt_bench::{Opts, Table};
use qt_transformer::{LoraConfig, ModelKind, TransformerConfig};

fn main() {
    let opts = Opts::parse();
    // The memory model is analytic, so it can use MobileBERT_tiny's
    // *paper-scale* dimensions directly (~15M parameters, 21 layers,
    // hidden 128, two stacked FFNs).
    let cfg = TransformerConfig {
        name: "MobileBERT_tiny (paper-scale)",
        kind: ModelKind::Encoder,
        vocab: 30522,
        hidden: 128,
        layers: 21,
        heads: 4,
        ffn: 512,
        stacked_ffn: 2,
        ln_between_ffn: false,
        max_seq: 512,
    };
    let lora = LoraConfig::mobilebert_default();

    let variants: [(&str, Precision, Option<LoraConfig>); 3] = [
        ("16-bit full fine-tuning", Precision::bf16(), None),
        ("+ LoRA", Precision::bf16(), Some(lora)),
        ("+ LoRA + 8-bit", Precision::eight_bit(), Some(lora)),
    ];

    let mut table = Table::new(
        "Figure 14: fine-tuning memory breakdown (MiB), MobileBERT_tiny paper-scale, seq 128, batch 16",
        &[
            "Variant",
            "Params",
            "Weight grads",
            "Optimizer",
            "Activations",
            "Errors",
            "Total",
            "vs baseline",
        ],
    );

    let kib = |b: u64| format!("{:.1}", b as f64 / (1024.0 * 1024.0));
    let baseline = FinetuneMemoryModel::figure14(cfg.clone(), Precision::bf16(), None)
        .breakdown()
        .total();
    for (name, prec, l) in variants {
        let b = FinetuneMemoryModel::figure14(cfg.clone(), prec, l).breakdown();
        table.row(&[
            name.into(),
            kib(b.parameters),
            kib(b.weight_grads),
            kib(b.optimizer),
            kib(b.activations),
            kib(b.errors),
            kib(b.total()),
            format!("{:.2}x", baseline as f64 / b.total() as f64),
        ]);
    }
    table.print();
    table
        .write_json(&opts.out_dir, "fig14_finetune_memory")
        .expect("write results");
}
