//! **Figure 4**: decimal accuracy of E4M3 and E5M2 vs Posit(8,1) across
//! the dynamic range.
//!
//! Reproduction target: posit's tapered precision — highest decimal
//! accuracy near 1, beating E5M2 everywhere near 1 and E4M3 in a band
//! around 1, then falling below both toward the range edges.

use qt_bench::{Opts, Table};
use qt_posit::P8E1;
use qt_quant::ElemFormat;
use qt_softfloat::accuracy::decimal_accuracy_of_rounding;
use qt_softfloat::{E4M3, E5M2};

fn main() {
    let opts = Opts::parse();
    let mut table = Table::new(
        "Figure 4: worst-case decimal accuracy per binade",
        &["log2(x)", "Posit(8,1)", "E4M3", "E5M2"],
    );

    let worst = |round: &dyn Fn(f64) -> f64, e: i32| -> f64 {
        let mut w = f64::INFINITY;
        for i in 1..64 {
            let x = libm::exp2(e as f64 + i as f64 / 64.0);
            let da = decimal_accuracy_of_rounding(x, round);
            if da < w {
                w = da;
            }
        }
        w
    };

    for e in -16..=15 {
        let p = worst(&|x| P8E1::quantize(x), e);
        let a = worst(&|x| E4M3::quantize(x), e);
        let b = worst(&|x| E5M2::quantize(x), e);
        let f = |v: f64| {
            if v.is_finite() {
                format!("{v:.2}")
            } else {
                "-inf".into()
            }
        };
        table.row(&[format!("{e}"), f(p), f(a), f(b)]);
    }

    // Summary assertions of the shape, printed for EXPERIMENTS.md.
    let near_one = |round: &dyn Fn(f64) -> f64| worst(round, 0);
    println!(
        "near x=1: posit {:.2} vs E4M3 {:.2} vs E5M2 {:.2} (posit highest: {})",
        near_one(&|x| P8E1::quantize(x)),
        near_one(&|x| E4M3::quantize(x)),
        near_one(&|x| E5M2::quantize(x)),
        near_one(&|x| P8E1::quantize(x)) > near_one(&|x| E4M3::quantize(x))
    );
    println!(
        "ranges: posit 2^±12, E4M3 max {}, E5M2 max {}",
        ElemFormat::E4M3.max_value(),
        ElemFormat::E5M2.max_value()
    );

    table.print();
    table
        .write_json(&opts.out_dir, "fig04_decimal_accuracy")
        .expect("write results");
}
