//! **Figure 12**: MAC area/power per datapath (without codec logic), plus
//! the Posit8 encoder/decoder cost.
//!
//! Reproduction target: Posit8's MAC is slightly larger than hybrid FP8's
//! (one extra fraction bit) but both are far below BF16; the posit codecs
//! are small relative to a MAC.

use qt_accel::{Datapath, PositCodec, SynthesisPoint, Tech40};
use qt_bench::{Opts, Table};

fn main() {
    let opts = Opts::parse();
    let tech = Tech40::default();
    let pt = SynthesisPoint::nominal();

    let mut table = Table::new(
        "Figure 12: MAC area/power at 200 MHz (no codec) + Posit8 codec",
        &["Unit", "Area (um2)", "Power (uW)"],
    );
    for d in Datapath::ALL {
        let ap = d.mac().synth(&tech, pt);
        table.row(&[
            format!("{} MAC", d.name()),
            format!("{:.0}", ap.area_mm2 * 1e6),
            format!("{:.1}", ap.power_mw * 1e3),
        ]);
    }
    let codec = PositCodec::p8();
    let dec = codec.decoder(&tech, pt);
    let enc = codec.encoder(&tech, pt);
    table.row(&[
        "Posit8 decoder".into(),
        format!("{:.0}", dec.area_mm2 * 1e6),
        format!("{:.1}", dec.power_mw * 1e3),
    ]);
    table.row(&[
        "Posit8 encoder".into(),
        format!("{:.0}", enc.area_mm2 * 1e6),
        format!("{:.1}", enc.power_mw * 1e3),
    ]);
    table.print();

    let p8 = Datapath::Posit8.mac().synth(&tech, pt);
    let hy = Datapath::HybridFp8.mac().synth(&tech, pt);
    let bf = Datapath::Bf16.mac().synth(&tech, pt);
    println!(
        "Posit8 MAC is {:.0}% larger than hybrid FP8; BF16 MAC is {:.1}x Posit8",
        100.0 * (p8.area_mm2 / hy.area_mm2 - 1.0),
        bf.area_mm2 / p8.area_mm2
    );
    table
        .write_json(&opts.out_dir, "fig12_mac_encdec")
        .expect("write results");
}
