//! **Figure 7**: the piecewise-linear posit reciprocal (left) and the
//! approximate exponential in its raw / thresholded / shifted forms
//! (right), tabulated as (x, y) series.

use qt_bench::{Opts, Table};
use qt_posit::approx::{fast_reciprocal, pwl_reciprocal, ExpApprox};
use qt_posit::P8E1;

fn main() {
    let opts = Opts::parse();

    let mut recip = Table::new(
        "Figure 7 (left): posit reciprocal vs exact 1/x",
        &["x", "posit recip", "ideal PWL", "exact 1/x"],
    );
    let mut x = 0.25;
    while x <= 8.0 {
        recip.row(&[
            format!("{x:.3}"),
            format!("{:.4}", fast_reciprocal(P8E1::from_f64(x)).to_f64()),
            format!("{:.4}", pwl_reciprocal(x)),
            format!("{:.4}", 1.0 / x),
        ]);
        x += 0.25;
    }
    recip.print();
    recip
        .write_json(&opts.out_dir, "fig07_recip_curve")
        .expect("write results");

    let raw = ExpApprox::raw();
    let thr = ExpApprox::thresholded(-4.0);
    let shifted = ExpApprox::PAPER_BEST;
    let mut exp = Table::new(
        "Figure 7 (right): approximate exponential variants vs e^x",
        &["x", "raw (no θ)", "θ=-4", "θ=-4 + shift", "exact e^x"],
    );
    let mut x = -8.0;
    while x <= 0.01 {
        exp.row(&[
            format!("{x:.2}"),
            format!("{:.4}", raw.eval_f64(x)),
            format!("{:.4}", thr.eval_f64(x)),
            format!("{:.4}", shifted.eval_f64(x)),
            format!("{:.4}", libm::exp(x)),
        ]);
        x += 0.5;
    }
    exp.print();
    exp.write_json(&opts.out_dir, "fig07_exp_curves")
        .expect("write results");

    println!(
        "raw tail at x=-8: {:.4} (fails to converge to 0); shifted tail: {:.4}",
        raw.eval_f64(-8.0),
        shifted.eval_f64(-8.0)
    );
}
