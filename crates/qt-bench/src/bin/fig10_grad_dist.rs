//! **Figure 10**: tensor value distributions during fine-tuning — weights,
//! activations, and activation gradients — overlaid with the coverage of
//! E4M3 and Posit(8,1).
//!
//! Reproduction target: weights/activations fit inside both formats'
//! ranges, while the activation-gradient distribution falls largely
//! *below* both (hence per-tensor scaling, §5.1).

use qt_bench::{classify_task_for, Opts, Table};
use qt_datagen::ClassifyKind;
use qt_quant::{ElemFormat, QuantScheme, ScalingMode};
use qt_tensor::TensorStats;
use qt_train::{AdamW, Trainer};
use qt_transformer::{
    Model, ProbeStore, QuantCtx, TaskHead, TrainMode, TransformerConfig,
};
use rand::{rngs::StdRng, SeedableRng};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let opts = Opts::parse();
    let steps = opts.pick(60, 12);

    let cfg = TransformerConfig::mobilebert_sim();
    let task = classify_task_for(&cfg, ClassifyKind::Sst2);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let model = Model::new(cfg.clone(), TaskHead::Classify(2), &mut rng);

    // Train briefly in FP32 with a probe attached: the cut sites record
    // activations on the way forward and gradients on the way back.
    let probe = Rc::new(RefCell::new(ProbeStore::new()));
    let scheme = QuantScheme::fp32().with_scaling(ScalingMode::None);
    // bwd must be non-FP32 for the backward hook to fire; use BF16 (lossless
    // at these magnitudes) purely as a recorder.
    let mut scheme = scheme;
    scheme.bwd = ElemFormat::Bf16;
    let qctx = QuantCtx::training(scheme).with_probe(Rc::clone(&probe));
    let mut trainer = Trainer::new(model, qctx, TrainMode::Full, AdamW::new(1e-3));
    let data = task.dataset(steps * 16, opts.seed ^ 0x77);
    for chunk in data.chunks(16).take(steps) {
        let (batch, labels) = task.batch(chunk);
        trainer.step_classify(&batch, &labels);
    }

    // Aggregate three tensor classes.
    let p = probe.borrow();
    let mut classes: Vec<(&str, Vec<u64>)> = Vec::new();
    let acts = p
        .merged_hist_where(|n| n.ends_with(".in") || n.ends_with(".softmax.in"))
        .unwrap_or_default();
    classes.push(("activations", acts));
    classes.push((
        "act gradients",
        p.merged_hist_where(|n| n.ends_with(".grad")).unwrap_or_default(),
    ));
    // weights straight from the model
    let mut whist = vec![0u64; TensorStats::BUCKETS];
    for (name, t) in trainer.model.params.iter() {
        if name.ends_with(".w1") || name.ends_with(".wq") || name.ends_with(".w2") {
            let s = TensorStats::of(t);
            for (h, c) in whist.iter_mut().zip(&s.log2_hist) {
                *h += c;
            }
        }
    }
    classes.insert(0, ("weights", whist));

    let mut table = Table::new(
        "Figure 10: value distributions during fine-tuning vs format coverage",
        &[
            "Tensor class",
            "p1 binade",
            "p50 binade",
            "p99 binade",
            "in E4M3 range",
            "in Posit8 range",
        ],
    );
    let (e4_lo, e4_hi) = ElemFormat::E4M3.exp_range();
    let (p8_lo, p8_hi) = ElemFormat::P8E1.exp_range();
    for (name, hist) in classes {
        let total: u64 = hist.iter().sum::<u64>().max(1);
        let quantile = |q: f64| {
            let target = (q * total as f64).ceil() as u64;
            let mut acc = 0u64;
            for (i, &c) in hist.iter().enumerate() {
                acc += c;
                if acc >= target.max(1) {
                    return i as i32 + TensorStats::LOG2_LO;
                }
            }
            31
        };
        let frac_in = |lo: i32, hi: i32| {
            let lo_i = (lo - TensorStats::LOG2_LO).clamp(0, 63) as usize;
            let hi_i = (hi - TensorStats::LOG2_LO).clamp(0, 63) as usize;
            hist[lo_i..=hi_i].iter().sum::<u64>() as f64 / total as f64
        };
        table.row(&[
            name.into(),
            format!("2^{}", quantile(0.01)),
            format!("2^{}", quantile(0.5)),
            format!("2^{}", quantile(0.99)),
            format!("{:.1}%", 100.0 * frac_in(e4_lo, e4_hi)),
            format!("{:.1}%", 100.0 * frac_in(p8_lo, p8_hi)),
        ]);
    }

    table.print();
    table
        .write_json(&opts.out_dir, "fig10_grad_dist")
        .expect("write results");
}
