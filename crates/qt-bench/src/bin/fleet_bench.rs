//! **Fleet bench**: synthetic diurnal/bursty load against the qt-fleet
//! multi-replica serving fleet, comparing routing policies under
//! replica crashes, corruption, and tenant bursts.
//!
//! Drives the deterministic discrete-event fleet simulation — virtual
//! clock, heterogeneous replicas, real qt-par forward passes — so
//! `BENCH_fleet.json` is byte-identical for identical flags regardless
//! of host load or `QT_THREADS`. Each selected policy replays the same
//! request stream against a fresh fleet; the report captures shed rate,
//! deadline-miss rate, failover and hedge counts, latency percentiles,
//! and per-replica lifecycle stats. Every served-primary response is
//! then replay-audited against the fault environment — the
//! `unflagged_corrupt` count must always be zero.
//!
//! Extra flags beyond the shared harness (`--quick`, `--out`, `--seed`):
//!
//! * `--rps R` — mean offered load, requests/second of virtual time
//! * `--duration S` — virtual seconds of arrivals
//! * `--deadline-ms M` — per-request deadline budget (0 = none)
//! * `--shape constant|diurnal|bursty` — arrival-rate shape
//! * `--period-ms M` — shape period (one simulated "day" / burst cycle)
//! * `--users N` — simulated user population (default one million)
//! * `--tenants N`, `--quota Q` — tenancy shape (quota 0 = unlimited)
//! * `--replicas N`, `--formats a,b,..` — fleet shape (formats cycle)
//! * `--ber B` — bit-flip BER on replica 0's stored weight codes
//! * `--crash ID:AT_MS:DOWN_MS` — schedule an outage (repeatable)
//! * `--mtbf-ms M`, `--mttr-ms M` — seeded random outages, all replicas
//! * `--policy P` — one policy, or `all` (default) for the comparison
//! * `--no-hedge`, `--max-failovers N`, `--snapshot-ms M` — fleet knobs
//! * `--smoke` — assert the CI fault-tolerance invariants: at least one
//!   failover, zero unflagged-corrupt responses, and every crashed
//!   replica back in rotation (serving again after recovery)
//!
//! Telemetry plane (qt-telemetry) — always on; every run also writes
//! `BENCH_telemetry.json` (per-policy SLO scoreboard), per-policy
//! `telemetry_<policy>_{series,alerts}.jsonl`, and flight-recorder
//! dumps under `flight_<policy>/` on crash or breaker-open:
//!
//! * `--slo-availability A` — availability SLO target (default 0.999;
//!   0 disables)
//! * `--slo-p99-ms M` — p99 latency SLO bound in ms (default 0 = off)
//! * `--slo-window-scale F` — shrink the SRE burn-rate windows
//!   (5m/1h fast, 6h/3d slow) by F so they fit short simulated runs
//! * `--telemetry-interval-ms M` — time-series window width (default
//!   100 ms)
//! * `--flight-cap N` — flight-recorder ring capacity per replica
//! * `--expect-alerts` / `--expect-no-alerts` — CI assertions on the
//!   burn-rate alert count across all policies
//!
//! Adaptive control plane (qt-adapt) — off unless requested:
//!
//! * `--adapt-interval-ms M` — control-tick width (defaults to 50 ms
//!   once any adapt flag is given); arming the plane also arms the
//!   gray-failure detector
//! * `--brownout` — CoDel admission control plus the priority-tiered
//!   brownout ladder
//! * `--autoscale MIN:MAX` — queue-driven autoscaling over the band
//! * `--gray-slow-factor ID:FROM_MS:FACTOR` — inject a gray failure:
//!   replica ID silently slows by FACTOR× from FROM_MS on (repeatable)
//! * `--expect-brownout`, `--expect-scale-up`, `--expect-gray-eject`,
//!   `--expect-adapt-quiet` — CI assertions on the adaptive surface
//!
//! With the plane armed the run also writes `BENCH_adapt.json`
//! (schema `qt-adapt/bench/v1`): ladder walk, shed/drop/ejection/scale
//! counters, and per-priority-tier availability for every policy.
//!
//! Arrival streams are decorrelated across policies: each policy run
//! draws its request stream from a splitmix64 seed derived from the
//! base seed and the policy name, so cross-policy comparisons are not
//! accidentally synchronized to one arrival pattern.
//!
//! With `--trace-out`/`--manifest-out`, artifacts are suffixed per
//! policy (`trace_health_aware.json`, ...) and carry the telemetry
//! span trees and alert instants.
//!
//! Identical seed and flags ⇒ byte-identical `BENCH_fleet.json`,
//! `BENCH_telemetry.json`, and `BENCH_adapt.json`.

use qt_adapt::{AutoscaleConfig, BrownoutConfig, CodelConfig, GrayConfig};
use qt_fleet::{
    audit_unflagged_corruption, run_fleet_observed, ArrivalShape, DirSnapStore, FleetConfig,
    FleetLoadSpec, FleetReport, ReplicaSpec, RouterPolicy,
};
use qt_quant::ElemFormat;
use qt_robust::{BerFaultSource, CodeFormat, CrashSchedule, FaultSource, NoFaults};
use qt_transformer::{Model, TaskHead, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};

/// splitmix64 step — the standard seed-spreading finalizer.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-policy arrival seed: fold the policy name into the base seed so
/// each policy replays an independent (but reproducible) user stream.
fn policy_seed(base: u64, name: &str) -> u64 {
    let mut x = base;
    for b in name.bytes() {
        x = splitmix64(x ^ u64::from(b));
    }
    splitmix64(x)
}

/// Per-priority-tier offered/served/availability breakdown, mirroring
/// `qt_adapt::PriorityTier::of_user` (user % 4: 0,1 paid; 2 best
/// effort; 3 batch).
fn tier_doc(report: &FleetReport) -> serde_json::Value {
    let mut offered = [0u64; 3];
    let mut served = [0u64; 3];
    for r in &report.responses {
        let t = match r.user % 4 {
            0 | 1 => 0,
            2 => 1,
            _ => 2,
        };
        offered[t] += 1;
        if r.outcome.is_served() {
            served[t] += 1;
        }
    }
    let avail = |i: usize| {
        if offered[i] == 0 {
            1.0
        } else {
            served[i] as f64 / offered[i] as f64
        }
    };
    let tier = |i: usize| {
        serde_json::json!({
            "offered": offered[i],
            "served": served[i],
            "availability": avail(i),
        })
    };
    serde_json::json!({
        "paid": tier(0),
        "best_effort": tier(1),
        "batch": tier(2),
    })
}

fn main() {
    let opts = qt_bench::Opts::parse();
    let mut rps = 80.0f64;
    let mut duration_s = if opts.quick { 2.0 } else { 6.0 };
    let mut deadline_ms = 60u64;
    let mut shape = "diurnal".to_string();
    let mut period_ms = 500u64;
    let mut users = 1_000_000u64;
    let mut tenants = 4u32;
    let mut quota = 0u64;
    let mut seq = 8usize;
    let mut n_replicas = 3usize;
    let mut formats = vec![ElemFormat::P8E1, ElemFormat::E4M3, ElemFormat::Bf16];
    let mut ber = 0.0f64;
    let mut crashes: Vec<(usize, u64, u64)> = Vec::new();
    let mut mtbf_ms = 0u64;
    let mut mttr_ms = 0u64;
    let mut policy_arg = "all".to_string();
    let mut hedge = true;
    let mut max_failovers = 3u32;
    let mut snapshot_ms = 100u64;
    let mut smoke = false;
    let mut slo_availability = 0.999f64;
    let mut slo_p99_ms = 0u64;
    let mut slo_window_scale = 1.0f64;
    let mut telemetry_interval_ms = 100u64;
    let mut flight_cap = 256usize;
    let mut expect_alerts = false;
    let mut expect_no_alerts = false;
    let mut adapt_interval_ms = 0u64;
    let mut brownout_flag = false;
    let mut autoscale: Option<(usize, usize)> = None;
    let mut gray_slow: Vec<(usize, u64, u64)> = Vec::new();
    let mut expect_brownout = false;
    let mut expect_scale_up = false;
    let mut expect_gray_eject = false;
    let mut expect_adapt_quiet = false;

    let mut it = opts.extra.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rps" => {
                if let Some(v) = it.next() {
                    rps = v.parse().unwrap_or(rps);
                }
            }
            "--duration" => {
                if let Some(v) = it.next() {
                    duration_s = v.parse().unwrap_or(duration_s);
                }
            }
            "--deadline-ms" => {
                if let Some(v) = it.next() {
                    deadline_ms = v.parse().unwrap_or(deadline_ms);
                }
            }
            "--shape" => {
                if let Some(v) = it.next() {
                    shape = v.clone();
                }
            }
            "--period-ms" => {
                if let Some(v) = it.next() {
                    period_ms = v.parse().unwrap_or(period_ms);
                }
            }
            "--users" => {
                if let Some(v) = it.next() {
                    users = v.parse().unwrap_or(users);
                }
            }
            "--tenants" => {
                if let Some(v) = it.next() {
                    tenants = v.parse().unwrap_or(tenants);
                }
            }
            "--quota" => {
                if let Some(v) = it.next() {
                    quota = v.parse().unwrap_or(quota);
                }
            }
            "--seq" => {
                if let Some(v) = it.next() {
                    seq = v.parse().unwrap_or(seq);
                }
            }
            "--replicas" => {
                if let Some(v) = it.next() {
                    n_replicas = v.parse().unwrap_or(n_replicas);
                }
            }
            "--formats" => {
                if let Some(v) = it.next() {
                    let parsed: Vec<ElemFormat> =
                        v.split(',').filter_map(ElemFormat::parse).collect();
                    if !parsed.is_empty() {
                        formats = parsed;
                    }
                }
            }
            "--ber" => {
                if let Some(v) = it.next() {
                    ber = v.parse().unwrap_or(ber);
                }
            }
            "--crash" => {
                if let Some(v) = it.next() {
                    let parts: Vec<&str> = v.split(':').collect();
                    if let [id, at, down] = parts.as_slice() {
                        if let (Ok(id), Ok(at), Ok(down)) =
                            (id.parse::<usize>(), at.parse::<u64>(), down.parse::<u64>())
                        {
                            crashes.push((id, at, down));
                        }
                    }
                }
            }
            "--mtbf-ms" => {
                if let Some(v) = it.next() {
                    mtbf_ms = v.parse().unwrap_or(mtbf_ms);
                }
            }
            "--mttr-ms" => {
                if let Some(v) = it.next() {
                    mttr_ms = v.parse().unwrap_or(mttr_ms);
                }
            }
            "--policy" => {
                if let Some(v) = it.next() {
                    policy_arg = v.clone();
                }
            }
            "--no-hedge" => hedge = false,
            "--max-failovers" => {
                if let Some(v) = it.next() {
                    max_failovers = v.parse().unwrap_or(max_failovers);
                }
            }
            "--snapshot-ms" => {
                if let Some(v) = it.next() {
                    snapshot_ms = v.parse().unwrap_or(snapshot_ms);
                }
            }
            "--smoke" => smoke = true,
            "--slo-availability" => {
                if let Some(v) = it.next() {
                    slo_availability = v.parse().unwrap_or(slo_availability);
                }
            }
            "--slo-p99-ms" => {
                if let Some(v) = it.next() {
                    slo_p99_ms = v.parse().unwrap_or(slo_p99_ms);
                }
            }
            "--slo-window-scale" => {
                if let Some(v) = it.next() {
                    slo_window_scale = v.parse().unwrap_or(slo_window_scale);
                }
            }
            "--telemetry-interval-ms" => {
                if let Some(v) = it.next() {
                    telemetry_interval_ms = v.parse().unwrap_or(telemetry_interval_ms);
                }
            }
            "--flight-cap" => {
                if let Some(v) = it.next() {
                    flight_cap = v.parse().unwrap_or(flight_cap);
                }
            }
            "--expect-alerts" => expect_alerts = true,
            "--expect-no-alerts" => expect_no_alerts = true,
            "--adapt-interval-ms" => {
                if let Some(v) = it.next() {
                    adapt_interval_ms = v.parse().unwrap_or(adapt_interval_ms);
                }
            }
            "--brownout" => brownout_flag = true,
            "--autoscale" => {
                if let Some(v) = it.next() {
                    let parts: Vec<&str> = v.split(':').collect();
                    if let [lo, hi] = parts.as_slice() {
                        if let (Ok(lo), Ok(hi)) = (lo.parse::<usize>(), hi.parse::<usize>()) {
                            autoscale = Some((lo.max(1), hi.max(lo.max(1))));
                        }
                    }
                }
            }
            "--gray-slow-factor" => {
                if let Some(v) = it.next() {
                    let parts: Vec<&str> = v.split(':').collect();
                    if let [id, from, factor] = parts.as_slice() {
                        if let (Ok(id), Ok(from), Ok(factor)) = (
                            id.parse::<usize>(),
                            from.parse::<u64>(),
                            factor.parse::<u64>(),
                        ) {
                            gray_slow.push((id, from, factor));
                        }
                    }
                }
            }
            "--expect-brownout" => expect_brownout = true,
            "--expect-scale-up" => expect_scale_up = true,
            "--expect-gray-eject" => expect_gray_eject = true,
            "--expect-adapt-quiet" => expect_adapt_quiet = true,
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }

    // Any adapt flag arms the control plane (and with it the gray
    // detector); the tick interval defaults to 50 ms when unset.
    let adapt_on = brownout_flag
        || autoscale.is_some()
        || !gray_slow.is_empty()
        || adapt_interval_ms > 0;
    if adapt_on && adapt_interval_ms == 0 {
        adapt_interval_ms = 50;
    }

    let model_cfg = TransformerConfig::mobilebert_tiny_sim();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let model = Model::new(model_cfg, TaskHead::Classify(2), &mut rng);
    let vocab = model.cfg.vocab;
    let duration_us = (duration_s * 1e6) as u64;

    // Fleet shape: formats cycle across the replica count, each replica
    // gets its scheduled outages (explicit --crash windows first, then a
    // seeded MTBF/MTTR schedule if requested).
    let n_replicas = n_replicas.max(1);
    let mut specs = Vec::with_capacity(n_replicas);
    for r in 0..n_replicas {
        let mut spec = ReplicaSpec::new(formats[r % formats.len()]);
        let mut windows: Vec<_> = crashes
            .iter()
            .filter(|&&(id, _, _)| id == r)
            .map(|&(_, at, down)| (at * 1_000, down * 1_000))
            .collect();
        let sched = if mtbf_ms > 0 && mttr_ms > 0 {
            CrashSchedule::seeded(
                opts.seed ^ (0xc4a5 + r as u64),
                duration_us,
                mtbf_ms * 1_000,
                mttr_ms * 1_000,
            )
        } else if let Some((at, down)) = (windows.len() == 1).then(|| windows.remove(0)) {
            CrashSchedule::single(at, down)
        } else {
            CrashSchedule::from_windows(
                windows
                    .into_iter()
                    .map(|(at, down)| qt_robust::CrashWindow {
                        down_at_us: at,
                        up_at_us: at + down,
                    })
                    .collect(),
            )
        };
        spec = spec.with_crashes(sched);
        for &(id, from_ms, factor) in &gray_slow {
            if id == r {
                spec = spec.with_gray_slowdown(from_ms * 1_000, factor);
            }
        }
        specs.push(spec);
    }
    let autoscale = autoscale.map(|(lo, hi)| (lo.min(n_replicas), hi.min(n_replicas)));
    let crashed_ids: Vec<usize> = specs
        .iter()
        .enumerate()
        .filter(|(_, s)| !s.crashes.is_empty())
        .map(|(r, _)| r)
        .collect();

    // Fault environment: the BER hits replica 0's stored codes (the
    // fast posit8 node lives in the fault environment; wide-format
    // replicas are immune by construction). Rebuilt fresh per policy
    // run so every policy sees identical fault draws.
    let faults_for = |specs: &[ReplicaSpec]| -> Vec<Box<dyn FaultSource + Send + Sync>> {
        specs
            .iter()
            .enumerate()
            .map(|(r, spec)| -> Box<dyn FaultSource + Send + Sync> {
                match (r == 0 && ber > 0.0, CodeFormat::new(spec.format)) {
                    (true, Some(codec)) => {
                        Box::new(BerFaultSource::new(opts.seed ^ 0xfa17, codec, ber))
                    }
                    _ => Box::new(NoFaults),
                }
            })
            .collect()
    };

    let arrival_shape = match shape.as_str() {
        "constant" => ArrivalShape::Constant,
        "bursty" => ArrivalShape::Bursty {
            burst_len_us: (period_ms * 1_000) / 5,
            burst_mult: 4.0,
        },
        _ => ArrivalShape::Diurnal { trough_ratio: 0.3 },
    };
    // Requests are generated per policy with a policy-derived seed so
    // the streams are decorrelated; count and arrival times depend only
    // on (rps, shape, duration), so the offered load stays comparable.
    let load_spec = |arrival_seed: u64| FleetLoadSpec {
        rps,
        duration_us,
        shape: arrival_shape,
        period_us: period_ms.max(1) * 1_000,
        users,
        tenants,
        deadline_us: deadline_ms.saturating_mul(1_000),
        seq,
        seed: arrival_seed,
    };
    eprintln!(
        "[fleet_bench] {rps} rps ({shape}) over {duration_s}s across {} users, \
         {n_replicas} replicas, deadline {deadline_ms} ms, ber {ber:e}, {} scheduled outages",
        users,
        crashes.len()
    );

    let policies: Vec<RouterPolicy> = if policy_arg == "all" {
        vec![
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastLoaded,
            RouterPolicy::HealthAware,
        ]
    } else {
        vec![RouterPolicy::parse(&policy_arg).unwrap_or_else(|| {
            eprintln!("unknown policy {policy_arg:?}; using health_aware");
            RouterPolicy::HealthAware
        })]
    };

    // SLO set shared by every policy run: availability, optionally a
    // p99 latency bound, with burn-rate windows scaled down to fit the
    // short simulated horizon.
    let mut slos = Vec::new();
    if slo_availability > 0.0 {
        slos.push(
            qt_telemetry::SloSpec::availability(slo_availability)
                .with_window_scale(slo_window_scale),
        );
    }
    if slo_p99_ms > 0 {
        slos.push(
            qt_telemetry::SloSpec::latency_p99(0.99, slo_p99_ms * 1_000)
                .with_window_scale(slo_window_scale),
        );
    }

    std::fs::create_dir_all(&opts.out_dir).expect("create output dir");
    let mut policy_docs: Vec<serde_json::Value> = Vec::new();
    let mut telemetry_docs: Vec<serde_json::Value> = Vec::new();
    let mut total_alert_fires = 0u64;
    let mut reports: Vec<(RouterPolicy, FleetReport, u64)> = Vec::new();
    let mut adapt_docs: Vec<serde_json::Value> = Vec::new();
    for policy in policies {
        let arrival_seed = policy_seed(opts.seed, policy.name());
        let requests = load_spec(arrival_seed).requests(vocab);
        eprintln!(
            "[fleet_bench] {}: {} requests (arrival seed {arrival_seed:#018x})",
            policy.name(),
            requests.len()
        );
        let cfg = FleetConfig {
            replicas: specs.clone(),
            policy,
            tenants,
            tenant_quota: quota,
            max_failovers,
            hedge,
            snapshot_every_us: snapshot_ms * 1_000,
            retry_seed: opts.seed,
            adapt_every_us: adapt_interval_ms * 1_000,
            codel: brownout_flag.then(CodelConfig::default),
            brownout: brownout_flag.then(BrownoutConfig::default),
            gray: adapt_on.then(GrayConfig::default),
            autoscale: autoscale.map(|(lo, hi)| AutoscaleConfig {
                min_replicas: lo,
                max_replicas: hi,
                ..AutoscaleConfig::default()
            }),
            shield: None,
        };
        let snap_dir = opts.out_dir.join(format!("fleet_snaps_{}", policy.name()));
        let popts = opts.scoped(policy.name());
        let trace = popts.open_trace(&format!("fleet_bench_{}", policy.name()));
        let tel_cfg = qt_telemetry::TelemetryConfig {
            interval_us: telemetry_interval_ms.max(1) * 1_000,
            slos: slos.clone(),
            flight_capacity: flight_cap,
            flight_dir: Some(opts.out_dir.join(format!("flight_{}", policy.name()))),
            seed: opts.seed,
            ..qt_telemetry::TelemetryConfig::default()
        };
        let tel = qt_telemetry::TelemetrySink::handle(tel_cfg, cfg.replicas.len());
        let report = run_fleet_observed(
            &model,
            &cfg,
            &requests,
            faults_for(&specs),
            Box::new(DirSnapStore::new(&snap_dir)),
            trace.as_ref(),
            Some(&tel),
        );
        if let Some(t) = trace.as_ref() {
            qt_telemetry::export_to_trace(&tel.borrow(), &mut t.borrow_mut());
        }
        popts.close_trace(trace);
        assert!(
            report.reconciles(),
            "{}: outcome counters must reconcile to offered load",
            policy.name()
        );
        let unflagged = audit_unflagged_corruption(&model, &cfg, &requests, faults_for(&specs), &report);
        let mut doc = report.to_json();
        if let serde_json::Value::Object(map) = &mut doc {
            map.insert("unflagged_corrupt".into(), serde_json::json!(unflagged));
            map.insert("arrival_seed".into(), serde_json::json!(arrival_seed));
        }
        if adapt_on {
            adapt_docs.push(serde_json::json!({
                "policy": policy.name(),
                "arrival_seed": arrival_seed,
                "brownout_peak": report.brownout_peak.clone(),
                "codel_drops": report.codel_drops,
                "brownout_sheds": report.brownout_sheds,
                "shed_overload": report.shed_overload,
                "economy_served": report.economy_served,
                "gray_ejections": report.gray_ejections,
                "scale_ups": report.scale_ups,
                "scale_downs": report.scale_downs,
                "tiers": tier_doc(&report),
                "events": report
                    .adapt_events
                    .iter()
                    .map(|e| e.to_json())
                    .collect::<Vec<_>>(),
            }));
        }

        // Telemetry artifacts: per-policy scoreboard section plus the
        // raw series/alert streams as JSONL (all atomic writes).
        let sink = tel.borrow();
        let fires = sink.slo().fires();
        total_alert_fires += fires as u64;
        let series_path = opts
            .out_dir
            .join(format!("telemetry_{}_series.jsonl", policy.name()));
        qt_ckpt::atomic_write_str(&series_path, &qt_telemetry::timeseries_jsonl(&sink))
            .unwrap_or_else(|e| eprintln!("telemetry series {}: {e}", series_path.display()));
        let alerts_path = opts
            .out_dir
            .join(format!("telemetry_{}_alerts.jsonl", policy.name()));
        qt_ckpt::atomic_write_str(&alerts_path, &qt_telemetry::alerts_jsonl(&sink))
            .unwrap_or_else(|e| eprintln!("telemetry alerts {}: {e}", alerts_path.display()));
        let mut tdoc = qt_telemetry::telemetry_report(&sink);
        if let serde_json::Value::Object(map) = &mut tdoc {
            map.insert("policy".into(), serde_json::json!(policy.name()));
        }
        telemetry_docs.push(tdoc);
        eprintln!(
            "[fleet_bench] {}: goodput {:.3}, shed {:.3}, miss {:.3}, failovers {} \
             (crash {}), hedges {}, unflagged corrupt {}, alert fires {}, flight dumps {}",
            policy.name(),
            report.goodput(),
            report.shed_rate(),
            report.miss_rate(),
            report.failovers,
            report.crash_failovers,
            report.hedges,
            unflagged,
            fires,
            sink.dumps().len()
        );
        drop(sink);
        policy_docs.push(doc);
        reports.push((policy, report, unflagged));
    }

    if smoke {
        for (policy, report, unflagged) in &reports {
            assert_eq!(
                *unflagged,
                0,
                "{}: served-primary responses must replay clean",
                policy.name()
            );
            if !crashed_ids.is_empty() {
                assert!(
                    report.failovers + report.requeued_on_crash > 0,
                    "{}: a mid-run crash must fail work over",
                    policy.name()
                );
                for &r in &crashed_ids {
                    let stats = &report.replicas[r].stats;
                    assert!(
                        stats.recoveries > 0,
                        "{}: replica {r} must recover from its outage",
                        policy.name()
                    );
                    assert!(
                        stats.served_after_recovery > 0,
                        "{}: recovered replica {r} must rejoin the rotation",
                        policy.name()
                    );
                }
            }
        }
        eprintln!("[fleet_bench] smoke invariants hold");
    }

    if expect_brownout {
        for (policy, report, _) in &reports {
            assert!(
                report.brownout_sheds > 0,
                "{}: --expect-brownout: the ladder never shed",
                policy.name()
            );
            assert_ne!(
                report.brownout_peak, "normal",
                "{}: --expect-brownout: the ladder never left Normal",
                policy.name()
            );
            // Rung changes must walk one severity step at a time.
            let mut sev = 0i64;
            for e in report
                .adapt_events
                .iter()
                .filter(|e| e.kind.starts_with("brownout"))
            {
                let d = e.detail as i64;
                assert_eq!(
                    (d - sev).abs(),
                    1,
                    "{}: brownout ladder must move one rung per tick",
                    policy.name()
                );
                sev = d;
            }
        }
        eprintln!("[fleet_bench] brownout ladder engaged, as expected");
    }
    if expect_scale_up {
        for (policy, report, _) in &reports {
            assert!(
                report.scale_ups >= 1,
                "{}: --expect-scale-up: no replica was booted",
                policy.name()
            );
            assert!(
                report.adapt_events.iter().any(|e| e.kind == "scale_up_done"),
                "{}: --expect-scale-up: boot never completed",
                policy.name()
            );
        }
        eprintln!("[fleet_bench] autoscaler booted reserve capacity, as expected");
    }
    if expect_gray_eject {
        for (policy, report, _) in &reports {
            assert!(
                report.gray_ejections >= 1,
                "{}: --expect-gray-eject: the slow replica was never ejected",
                policy.name()
            );
        }
        eprintln!("[fleet_bench] gray replica ejected, as expected");
    }
    if expect_adapt_quiet {
        for (policy, report, _) in &reports {
            assert_eq!(
                report.brownout_peak,
                "normal",
                "{}: --expect-adapt-quiet: ladder moved on a healthy run",
                policy.name()
            );
            assert_eq!(
                report.shed_overload + report.codel_drops + report.gray_ejections
                    + report.scale_ups
                    + report.scale_downs,
                0,
                "{}: --expect-adapt-quiet: adaptive plane acted on a healthy run",
                policy.name()
            );
        }
        eprintln!("[fleet_bench] adaptive plane stayed quiet on healthy traffic, as expected");
    }

    let doc = serde_json::json!({
        "schema": "qt-fleet/bench/v1",
        "bench": "fleet_bench",
        "seed": opts.seed,
        "rps": rps,
        "duration_s": duration_s,
        "deadline_ms": deadline_ms,
        "shape": shape,
        "users": users,
        "tenants": tenants,
        "quota": quota,
        "ber": ber,
        "replicas": specs.iter().map(|s| s.format.name()).collect::<Vec<_>>(),
        "crashes": crashes
            .iter()
            .map(|&(id, at, down)| serde_json::json!({
                "replica": id, "at_ms": at, "down_ms": down,
            }))
            .collect::<Vec<_>>(),
        "hedge": hedge,
        "policies": policy_docs,
    });
    let path = opts.out_dir.join("BENCH_fleet.json");
    let mut text = serde_json::to_string_pretty(&doc).expect("serializable");
    text.push('\n');
    // Atomic write (qt-ckpt): a crash here never leaves a torn report.
    qt_ckpt::atomic_write_str(&path, &text).expect("write BENCH_fleet.json");
    eprintln!("[fleet_bench] wrote {}", path.display());

    // Telemetry scoreboard: the per-policy SLO/alert/trace/flight
    // summary, same determinism contract as BENCH_fleet.json.
    let tel_doc = serde_json::json!({
        "schema": "qt-telemetry/bench/v1",
        "bench": "fleet_bench",
        "seed": opts.seed,
        "slo_availability": slo_availability,
        "slo_p99_ms": slo_p99_ms,
        "slo_window_scale": slo_window_scale,
        "interval_ms": telemetry_interval_ms,
        "alert_fires": total_alert_fires,
        "policies": telemetry_docs,
    });
    let tel_path = opts.out_dir.join("BENCH_telemetry.json");
    let mut tel_text = serde_json::to_string_pretty(&tel_doc).expect("serializable");
    tel_text.push('\n');
    qt_ckpt::atomic_write_str(&tel_path, &tel_text).expect("write BENCH_telemetry.json");
    eprintln!("[fleet_bench] wrote {}", tel_path.display());

    // Adaptive-plane scoreboard — only when the plane is armed.
    if adapt_on {
        let adapt_doc = serde_json::json!({
            "schema": "qt-adapt/bench/v1",
            "bench": "fleet_bench",
            "seed": opts.seed,
            "adapt_interval_ms": adapt_interval_ms,
            "brownout": brownout_flag,
            "autoscale": autoscale
                .map_or(serde_json::Value::Null, |(lo, hi)| serde_json::json!([lo, hi])),
            "gray_slowdowns": gray_slow
                .iter()
                .map(|&(id, from_ms, factor)| serde_json::json!({
                    "replica": id, "from_ms": from_ms, "factor": factor,
                }))
                .collect::<Vec<_>>(),
            "policies": adapt_docs,
        });
        let adapt_path = opts.out_dir.join("BENCH_adapt.json");
        let mut adapt_text = serde_json::to_string_pretty(&adapt_doc).expect("serializable");
        adapt_text.push('\n');
        qt_ckpt::atomic_write_str(&adapt_path, &adapt_text).expect("write BENCH_adapt.json");
        eprintln!("[fleet_bench] wrote {}", adapt_path.display());
    }

    if expect_alerts {
        assert!(
            total_alert_fires > 0,
            "--expect-alerts: no burn-rate alert fired across any policy"
        );
        eprintln!("[fleet_bench] burn-rate alerts fired as expected ({total_alert_fires})");
    }
    if expect_no_alerts {
        assert_eq!(
            total_alert_fires, 0,
            "--expect-no-alerts: burn-rate alerts fired on a healthy run"
        );
        eprintln!("[fleet_bench] zero burn-rate alerts, as expected");
    }

    // Quick textual comparison table for humans.
    let offered = reports.first().map_or(0, |(_, r, _)| r.responses.len());
    println!("fleet_bench (seed {}, {offered} requests/policy)", opts.seed);
    println!(
        "  {:<14} {:>8} {:>8} {:>8} {:>10} {:>8} {:>10} {:>10}",
        "policy", "goodput", "shed", "miss", "failovers", "hedges", "p50 ms", "p99 ms"
    );
    for (policy, report, _) in &reports {
        println!(
            "  {:<14} {:>8.3} {:>8.3} {:>8.3} {:>10} {:>8} {:>10.2} {:>10.2}",
            policy.name(),
            report.goodput(),
            report.shed_rate(),
            report.miss_rate(),
            report.failovers + report.requeued_on_crash,
            report.hedges,
            report.latency_quantile_us(0.5).unwrap_or(0.0) / 1_000.0,
            report.latency_quantile_us(0.99).unwrap_or(0.0) / 1_000.0,
        );
    }
}
