//! **Table 2**: span-extraction F1 on the synthetic SQuAD analogue across
//! the five encoder families, for Posit8 and E4M3 at every fusion level.
//!
//! Reproduction target (shape, not absolute numbers): BF16 sets the
//! ceiling; un-fused 8-bit quantization hurts the MobileBERT-style models
//! (stacked FFNs) most; accuracy recovers monotonically-ish as fusion
//! increases; larger BERT-style models are robust even without fusion.

use qt_bench::{pretrain_span, span_task_for, Opts, Table};
use qt_quant::{ElemFormat, FusionLevel, QuantScheme};
use qt_train::evaluate_span_f1;
use qt_transformer::{QuantCtx, TransformerConfig};

fn main() {
    let opts = Opts::parse();
    let steps = opts.pick(700, 120);
    let eval_n = opts.pick(256, 64);

    let mut table = Table::new(
        "Table 2: F1 on synthetic SQuAD vs fusion level (Posit8 / E4M3)",
        &[
            "Model",
            "Params",
            "BF16",
            "NoFus P8",
            "NoFus E4M3",
            "+Attn P8",
            "+Attn E4M3",
            "+Act P8",
            "+Act E4M3",
            "+LN P8",
            "+LN E4M3",
            "+Res P8",
            "+Res E4M3",
        ],
    );

    for cfg in TransformerConfig::squad_family() {
        let task = span_task_for(&cfg);
        eprintln!("[tab02] pretraining {} ({} steps)…", cfg.name, steps);
        let model = pretrain_span(&cfg, &task, steps, opts.seed);
        let eval = task.dataset(eval_n, opts.seed ^ 0xEEE);

        let f1 = |scheme: QuantScheme| {
            evaluate_span_f1(&model, &QuantCtx::inference(scheme), &task, &eval, 32)
        };
        let mut cells = vec![
            cfg.name.to_string(),
            format!("{}k", cfg.param_count() / 1000),
            format!("{:.1}", f1(QuantScheme::bf16())),
        ];
        for level in FusionLevel::ALL {
            for fmt in [ElemFormat::P8E1, ElemFormat::E4M3] {
                let scheme = QuantScheme::uniform(fmt).with_fusion(level);
                cells.push(format!("{:.1}", f1(scheme)));
            }
        }
        table.row(&cells);
    }

    table.print();
    table
        .write_json(&opts.out_dir, "tab02_fusion_sweep")
        .expect("write results");
}
