//! **Table 9**: fault-tolerance of 8-bit storage formats under SRAM
//! bit flips — accuracy degradation and free detection rate per
//! (format × flip-rate) cell of a seeded injection campaign.
//!
//! Weights are encoded into each format's stored codes, corrupted by a
//! deterministic seeded injector, decoded, and the classifier re-scored
//! under that format's inference scheme. The `SRAM flips` column ties the
//! sweep to hardware reality: the exact flip budget the accelerator's
//! soft-error model predicts for holding this model's weights at `--ber`.
//!
//! Extra flags beyond the shared harness (`--quick`, `--out`, `--seed`):
//!
//! * `--rates 1e-4,1e-3,1e-2` — per-bit flip probabilities to sweep
//! * `--formats p8e0,p8e1,p8e2,e4m3,e5m2` — storage formats to sweep
//! * `--trials N` — corruption trials averaged per cell
//! * `--ber B` — SRAM bit-error rate for the traffic-derived budget column
//! * `--ckpt-bers 1e-7,1e-6,1e-5` — BERs for the checkpoint-corruption
//!   companion table (storage-medium faults against serialized qt-ckpt
//!   files; detection must be 100%)
//! * `--json PATH` — also write the table's JSON form to an explicit path
//!
//! Identical seed and flags ⇒ identical table.

use qt_accel::{Accelerator, SramFaultModel, SystolicSim};
use qt_bench::{classify_task_for, datapath_for, pretrain_classify, Opts, Table};
use qt_datagen::ClassifyKind;
use qt_quant::{ElemFormat, QuantScheme};
use qt_robust::{
    run_campaign, run_ckpt_campaign, weight_traffic_budget, CampaignConfig, CkptCampaignConfig,
    CodeFormat,
};
use qt_train::evaluate_classify;
use qt_transformer::{QuantCtx, TransformerConfig};

fn parse_format(s: &str) -> Option<ElemFormat> {
    match s.to_ascii_lowercase().as_str() {
        "p8e0" => Some(ElemFormat::P8E0),
        "p8e1" => Some(ElemFormat::P8E1),
        "p8e2" => Some(ElemFormat::P8E2),
        "p16e1" => Some(ElemFormat::P16E1),
        "e4m3" => Some(ElemFormat::E4M3),
        "e5m2" => Some(ElemFormat::E5M2),
        "e5m3" => Some(ElemFormat::E5M3),
        "bf16" => Some(ElemFormat::Bf16),
        _ => None,
    }
}

fn main() {
    let opts = Opts::parse();
    let mut cfg = CampaignConfig::new(opts.seed);
    if opts.quick {
        cfg.trials = 1;
    }
    // Default BER is high for real silicon but sized to the sim-scale
    // model so the budget column is non-degenerate; override with --ber.
    let mut ber = 1e-4f64;
    let mut json_out: Option<std::path::PathBuf> = None;
    let mut ckpt_cfg = CkptCampaignConfig::new(opts.seed);
    if opts.quick {
        ckpt_cfg.trials = 2;
    }

    let mut it = opts.extra.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json_out = it.next().map(Into::into),
            "--ckpt-bers" => {
                if let Some(v) = it.next() {
                    ckpt_cfg.bit_error_rates =
                        v.split(',').filter_map(|x| x.parse().ok()).collect();
                }
            }
            "--rates" => {
                if let Some(v) = it.next() {
                    cfg.flip_rates = v.split(',').filter_map(|x| x.parse().ok()).collect();
                }
            }
            "--formats" => {
                if let Some(v) = it.next() {
                    cfg.formats = v.split(',').filter_map(parse_format).collect();
                }
            }
            "--trials" => {
                if let Some(v) = it.next() {
                    cfg.trials = v.parse().unwrap_or(cfg.trials);
                }
            }
            "--ber" => {
                if let Some(v) = it.next() {
                    ber = v.parse().unwrap_or(ber);
                }
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    assert!(
        !cfg.formats.is_empty() && !cfg.flip_rates.is_empty(),
        "need at least one valid format and one flip rate \
         (formats: p8e0 p8e1 p8e2 p16e1 e4m3 e5m2 e5m3 bf16)"
    );
    cfg.trials = cfg.trials.max(1);

    let steps = opts.pick(600, 100);
    let eval_n = opts.pick(256, 64);
    let trace = opts.open_trace("tab09_fault_tolerance");

    let model_cfg = TransformerConfig::mobilebert_tiny_sim();
    let task = classify_task_for(&model_cfg, ClassifyKind::Sst2);
    eprintln!("[tab09] pretraining {}…", model_cfg.name);
    let model = pretrain_classify(&model_cfg, &task, steps, opts.seed);
    let eval_data = task.dataset(eval_n, opts.seed ^ 0x109);
    let batches: Vec<_> = eval_data.chunks(16).map(|c| task.batch(c)).collect();

    eprintln!(
        "[tab09] campaign: {} formats × {} rates × {} trials, seed {}",
        cfg.formats.len(),
        cfg.flip_rates.len(),
        cfg.trials,
        cfg.seed
    );
    let cells = run_campaign(&cfg, &model, |m, fmt| {
        let mut ctx = QuantCtx::inference(QuantScheme::uniform(fmt));
        if let Some(t) = &trace {
            let sim = SystolicSim::new(Accelerator::new(8, datapath_for(fmt)));
            ctx = ctx
                .with_trace(std::rc::Rc::clone(t))
                .with_cycle_model(std::rc::Rc::new(sim));
        }
        evaluate_classify(m, &ctx, &batches)
    });

    let fault = SramFaultModel::new(ber);
    let mut table = Table::new(
        "Table 9: weight bit-flip sensitivity (synthetic SST-2 accuracy %)",
        &[
            "Format",
            "Flip rate",
            "Baseline",
            "Corrupted",
            "Degraded",
            "Detected",
            "SRAM flips",
        ],
    );
    for cell in &cells {
        let budget = CodeFormat::new(cell.format)
            .map(|codec| weight_traffic_budget(&model, codec, &fault))
            .unwrap_or(0);
        table.row(&[
            format!("{:?}", cell.format),
            format!("{:.0e}", cell.rate),
            format!("{:.1}", cell.baseline),
            format!("{:.1}", cell.corrupted),
            format!("{:+.1}", -cell.degradation()),
            format!("{:.0}%", 100.0 * cell.detection_rate()),
            format!("{budget}"),
        ]);
    }

    table.print();
    table
        .write_json(&opts.out_dir, "tab09_fault_tolerance")
        .expect("write results");
    if let Some(path) = &json_out {
        table.write_json_to(path).expect("write --json output");
        eprintln!("[tab09] wrote {}", path.display());
    }

    // Companion sweep: the same upsets aimed at the *durable* copy of
    // training state — serialized qt-ckpt files — where the question is
    // not graceful degradation but absolute detection plus recovery via
    // generation fallback.
    assert!(
        !ckpt_cfg.bit_error_rates.is_empty(),
        "need at least one checkpoint BER (--ckpt-bers)"
    );
    eprintln!(
        "[tab09] checkpoint-corruption campaign: {} formats × {} BERs × {} trials",
        ckpt_cfg.formats.len(),
        ckpt_cfg.bit_error_rates.len(),
        ckpt_cfg.trials
    );
    let ckpt_cells = run_ckpt_campaign(&ckpt_cfg, &model);
    let mut ckpt_table = Table::new(
        "Table 9b: checkpoint corruption — detection and generation fallback",
        &[
            "Format", "BER", "Bytes", "Corrupted", "Detected", "Silent", "Recovery", "Depth",
        ],
    );
    for cell in &ckpt_cells {
        ckpt_table.row(&[
            format!("{:?}", cell.format),
            format!("{:.0e}", cell.ber),
            format!("{}", cell.bytes),
            format!("{}", cell.corrupted_files),
            format!("{:.0}%", 100.0 * cell.detection_rate()),
            format!("{}", cell.silent),
            format!("{:.0}%", 100.0 * cell.recovery_rate()),
            format!("{:.2}", cell.mean_fallback_depth),
        ]);
        // The envelope's integrity guarantee: a corrupt checkpoint must
        // never load. Fail the binary loudly if it ever does.
        assert_eq!(
            cell.silent, 0,
            "corrupt checkpoint loaded silently ({:?} @ {:.0e})",
            cell.format, cell.ber
        );
    }
    ckpt_table.print();
    ckpt_table
        .write_json(&opts.out_dir, "tab09_ckpt_corruption")
        .expect("write results");
    opts.close_trace(trace);
}
