//! **Serving bench**: open-loop load against the qt-serve resilient
//! runtime, with optional SRAM bit-flip injection on the quantized
//! weight path.
//!
//! Drives the deterministic discrete-event simulation — virtual clock,
//! simulated workers, real qt-par forward passes — so the resulting
//! `BENCH_serve.json` is bit-identical for identical flags regardless of
//! host load or `QT_THREADS`. Reported: goodput, shed rate,
//! deadline-miss rate, degraded-mode fraction, latency percentiles,
//! breaker trips and transitions, and the reconciliation invariant
//! (offered = served + shed + missed).
//!
//! Extra flags beyond the shared harness (`--quick`, `--out`, `--seed`):
//!
//! * `--rps R` — offered load, requests/second of virtual time
//! * `--duration S` — virtual seconds of arrivals
//! * `--deadline-ms M` — per-request deadline budget (0 = none)
//! * `--ber B` — per-bit flip probability on stored 8-bit weight codes
//! * `--burst LO:HI:B` — escalate to BER `B` for request ids `LO..HI`
//!   (a scripted fault burst that exercises the breaker round trip)
//! * `--workers N`, `--queue-cap N`, `--seq N` — runtime shape
//! * `--snapshot PATH` — also write a crash-safe health snapshot
//!
//! Identical seed and flags ⇒ byte-identical `BENCH_serve.json`.

use qt_bench::Opts;
use qt_robust::{BerFaultSource, BurstFaultSource, CodeFormat, FaultSource, NoFaults};
use qt_serve::{run_sim, BreakerState, Engine, HealthSnapshot, LoadSpec, ServeConfig};
use qt_transformer::{Model, TaskHead, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let opts = Opts::parse();
    let mut rps = 50.0f64;
    let mut duration_s = if opts.quick { 2.0 } else { 10.0 };
    let mut deadline_ms = 40u64;
    let mut ber = 0.0f64;
    let mut burst: Option<(u64, u64, f64)> = None;
    let mut cfg = ServeConfig::default();
    let mut seq = 16usize;
    let mut snapshot_path: Option<std::path::PathBuf> = None;

    let mut it = opts.extra.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--rps" => {
                if let Some(v) = it.next() {
                    rps = v.parse().unwrap_or(rps);
                }
            }
            "--duration" => {
                if let Some(v) = it.next() {
                    duration_s = v.parse().unwrap_or(duration_s);
                }
            }
            "--deadline-ms" => {
                if let Some(v) = it.next() {
                    deadline_ms = v.parse().unwrap_or(deadline_ms);
                }
            }
            "--ber" => {
                if let Some(v) = it.next() {
                    ber = v.parse().unwrap_or(ber);
                }
            }
            "--burst" => {
                if let Some(v) = it.next() {
                    let parts: Vec<&str> = v.split(':').collect();
                    if let [lo, hi, b] = parts.as_slice() {
                        if let (Ok(lo), Ok(hi), Ok(b)) =
                            (lo.parse::<u64>(), hi.parse::<u64>(), b.parse::<f64>())
                        {
                            burst = Some((lo, hi, b));
                        }
                    }
                }
            }
            "--workers" => {
                if let Some(v) = it.next() {
                    cfg.workers = v.parse().unwrap_or(cfg.workers);
                }
            }
            "--queue-cap" => {
                if let Some(v) = it.next() {
                    cfg.queue_cap = v.parse().unwrap_or(cfg.queue_cap);
                }
            }
            "--seq" => {
                if let Some(v) = it.next() {
                    seq = v.parse().unwrap_or(seq);
                }
            }
            "--snapshot" => snapshot_path = it.next().map(Into::into),
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }

    let model_cfg = TransformerConfig::mobilebert_tiny_sim();
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let model = Model::new(model_cfg, TaskHead::Classify(2), &mut rng);
    let vocab = model.cfg.vocab;

    let codec = CodeFormat::new(cfg.primary).expect("primary format has stored codes");
    let fault: Box<dyn FaultSource + Send + Sync> = match (ber > 0.0, burst) {
        (_, Some((lo, hi, b))) => Box::new(BurstFaultSource::new(
            BerFaultSource::new(opts.seed ^ 0xfa17, codec, ber),
            b,
            lo..hi,
        )),
        (true, None) => Box::new(BerFaultSource::new(opts.seed ^ 0xfa17, codec, ber)),
        (false, None) => Box::new(NoFaults),
    };

    let engine = Engine::new(model, &cfg, fault);
    let spec = LoadSpec {
        rps,
        duration_us: (duration_s * 1e6) as u64,
        deadline_us: deadline_ms.saturating_mul(1_000),
        seq,
        seed: opts.seed,
    };
    let requests = spec.requests(vocab);
    eprintln!(
        "[serve_bench] {} requests at {rps} rps over {duration_s}s (deadline {deadline_ms} ms, \
         ber {ber:e}, {} workers, queue {})",
        requests.len(),
        cfg.workers,
        cfg.queue_cap
    );

    let trace = opts.open_trace("serve_bench");
    let report = run_sim(&engine, &cfg, &requests, trace.as_ref());
    opts.close_trace(trace);

    assert!(
        report.reconciles(),
        "outcome counters must reconcile to offered load"
    );

    let mut doc = report.to_json();
    if let serde_json::Value::Object(map) = &mut doc {
        map.insert("bench".to_string(), serde_json::json!("serve_bench"));
        map.insert("seed".to_string(), serde_json::json!(opts.seed));
        map.insert("rps".to_string(), serde_json::json!(rps));
        map.insert("deadline_ms".to_string(), serde_json::json!(deadline_ms));
        map.insert("ber".to_string(), serde_json::json!(ber));
        map.insert("workers".to_string(), serde_json::json!(cfg.workers as u64));
        map.insert(
            "queue_cap".to_string(),
            serde_json::json!(cfg.queue_cap as u64),
        );
    }

    std::fs::create_dir_all(&opts.out_dir).expect("create output dir");
    let path = opts.out_dir.join("BENCH_serve.json");
    let mut text = serde_json::to_string_pretty(&doc).expect("serializable");
    text.push('\n');
    // Atomic write (qt-ckpt): a crash here never leaves a torn report.
    qt_ckpt::atomic_write_str(&path, &text).expect("write BENCH_serve.json");
    eprintln!(
        "[serve_bench] goodput {:.3}, shed {:.3}, miss {:.3}, degraded {:.3}, trips {}",
        report.goodput(),
        report.shed_rate(),
        report.miss_rate(),
        report.degraded_fraction(),
        report.breaker_trips
    );
    eprintln!("[serve_bench] wrote {}", path.display());

    if let Some(p) = snapshot_path {
        // The sim consumed its breaker; the report's transition log is
        // the authoritative record of where it ended up.
        let snap = HealthSnapshot {
            breaker_state: report
                .transitions
                .last()
                .map(|t| t.to)
                .unwrap_or(BreakerState::Closed),
            breaker_trips: report.breaker_trips,
            unhealthy_rate: report
                .transitions
                .last()
                .map(|t| t.unhealthy_rate)
                .unwrap_or(0.0),
            offered: report.offered,
            served_primary: report.served_primary,
            served_degraded: report.served_degraded,
            shed_queue_full: report.shed_queue_full,
            deadline_miss: report.deadline_miss,
        };
        snap.save(&p).expect("write health snapshot");
        eprintln!("[serve_bench] wrote {}", p.display());
    }

    // Quick textual summary table for humans.
    println!("serve_bench (seed {})", opts.seed);
    println!("  offered          {:>8}", report.offered);
    println!("  served primary   {:>8}", report.served_primary);
    println!("  served degraded  {:>8}", report.served_degraded);
    println!("  shed (queue)     {:>8}", report.shed_queue_full);
    println!("  deadline miss    {:>8}", report.deadline_miss);
    println!("  flagged attempts {:>8}", report.flagged_attempts);
    println!("  bits flipped     {:>8}", report.bits_flipped);
    println!("  breaker trips    {:>8}", report.breaker_trips);
    println!(
        "  latency p50/p99  {:>8} / {} us",
        report.latency_quantile_us(0.5).unwrap_or(0.0),
        report.latency_quantile_us(0.99).unwrap_or(0.0)
    );
}
