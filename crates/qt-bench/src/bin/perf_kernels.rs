//! Kernel micro-benchmarks: the blocked GEMM swept over **backend ×
//! pool-size**, the code-domain GEMM paths, LUT quantization per format,
//! and a full traced forward pass.
//!
//! Besides timing, every sweep point is checked bitwise against the
//! scalar serial result — the determinism contract spans thread counts
//! *and* kernel backends — and the forward pass additionally compares
//! deterministic run manifests. Writes `results/BENCH_kernels.json`
//! (schema `qt-bench/kernels/v2`, carrying a tracked perf trajectory)
//! and `results/GEMM_digest.txt` (a backend-invariant digest of the
//! reference output bits, byte-comparable across `QT_BACKEND` CI legs).
//!
//! Extra flags (beyond the shared `qt_bench::Opts` set):
//!
//! - `--gemm-only`        skip the quantize and forward sections
//! - `--baseline PATH`    read the committed baseline from PATH instead
//!   of the output file's previous contents
//! - `--enforce-perf`     exit non-zero unless the best SIMD/code path
//!   beats scalar f32 (> 1.0×) and stays within 15 % of the baseline
//!   speedup

use qt_accel::{Accelerator, SystolicSim};
use qt_bench::{datapath_for, pretrain_lm, Opts};
use qt_datagen::LmTask;
use qt_quant::{
    matmul_codes, matmul_product_lut, ElemFormat, FakeQuant, PackedCodesB, PackedQuantB,
    ProductLut, QuantScheme,
};
use qt_tensor::kernels::{with_backend, GemmBackend, ALL_BACKENDS};
use qt_tensor::Tensor;
use qt_train::evaluate_lm_perplexity;
use qt_trace::{RunManifest, TraceSession};
use qt_transformer::{QuantCtx, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

/// Pool sizes every kernel is swept over.
const SWEEP: [usize; 4] = [1, 2, 4, 8];
/// A fresh run must reach at least this fraction of the baseline speedup
/// under `--enforce-perf` (>15 % regression fails).
const PERF_FLOOR: f64 = 0.85;
/// History entries kept in the trajectory (oldest dropped first).
const HISTORY_CAP: usize = 24;

/// Best-of-`iters` wall milliseconds for `f`, after one warmup call.
fn time_ms<R>(iters: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let mut out = f();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (out, best)
}

fn ms_map(ms: &BTreeMap<usize, f64>) -> Value {
    let mut m = BTreeMap::new();
    for (t, v) in ms {
        m.insert(format!("t{t}"), Value::from(*v));
    }
    Value::Object(m)
}

/// FNV-1a over f32 bit patterns: the backend-invariant output digest.
fn fnv1a64(h: &mut u64, data: &[f32]) {
    for &v in data {
        for b in v.to_bits().to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Sweep `f` over every available backend × pool size, asserting each
/// result is bitwise-identical to `reference`. Returns
/// `{backend: {tN: ms}}` rows.
fn backend_sweep(
    what: &str,
    iters: usize,
    reference: &Tensor,
    f: impl Fn() -> Tensor,
) -> Value {
    let mut rows = BTreeMap::new();
    for b in ALL_BACKENDS {
        if !b.available() {
            continue;
        }
        let mut ms = BTreeMap::new();
        for t in SWEEP {
            let (out, best) =
                with_backend(b, || qt_par::with_threads(t, || time_ms(iters, &f)));
            assert_eq!(
                out.data(),
                reference.data(),
                "{what} not bitwise-deterministic at backend {} / {t} threads",
                b.name()
            );
            ms.insert(t, best);
        }
        rows.insert(b.name().to_string(), ms_map(&ms));
    }
    Value::Object(rows)
}

/// `row["backend"][name]["t1"]` as f64.
fn t1_ms(row: &Value, backend: &str) -> Option<f64> {
    row.get("backend")?.get(backend)?.get("t1")?.as_f64()
}

fn median(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    if v.is_empty() {
        return f64::NAN;
    }
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

fn main() {
    let opts = Opts::parse();
    let iters = opts.pick(20, 3);
    let mut gemm_only = false;
    let mut baseline_path: Option<std::path::PathBuf> = None;
    let mut enforce_perf = false;
    let mut extra = opts.extra.iter();
    while let Some(a) = extra.next() {
        match a.as_str() {
            "--gemm-only" => gemm_only = true,
            "--baseline" => baseline_path = extra.next().map(Into::into),
            "--enforce-perf" => enforce_perf = true,
            other => {
                eprintln!("[perf_kernels] unknown flag {other:?}");
                std::process::exit(2);
            }
        }
    }
    let backends: Vec<GemmBackend> = ALL_BACKENDS
        .iter()
        .copied()
        .filter(|b| b.available())
        .collect();
    eprintln!(
        "[perf_kernels] backends {:?} (active: {}), pool sweep {SWEEP:?} (QT_THREADS={}, QT_BACKEND={})",
        backends.iter().map(|b| b.name()).collect::<Vec<_>>(),
        qt_tensor::kernels::active().name(),
        qt_par::qt_threads_env().unwrap_or_else(|| "unset".into()),
        qt_tensor::kernels::qt_backend_env().unwrap_or_else(|| "unset".into()),
    );

    // ---- GEMM: the tab06 model shapes (seq × hidden × ffn) ----
    let mut gemm_rows = Vec::new();
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    let mut shapes: Vec<(String, [usize; 3])> = [
        TransformerConfig::gpt2_large_sim(),
        TransformerConfig::gpt2_xl_sim(),
        TransformerConfig::llama7b_sim(),
        TransformerConfig::llama13b_sim(),
    ]
    .iter()
    .map(|cfg| (cfg.name.to_string(), [32, cfg.hidden, cfg.ffn]))
    .collect();
    // One deliberately larger shape so the parallel path is exercised
    // well past the serial threshold even in --quick mode.
    shapes.push(("synthetic".into(), [128, 256, 512]));
    let fq = FakeQuant::new(ElemFormat::P8E1);
    let mut rng = StdRng::seed_from_u64(opts.seed);
    for (name, [m, k, n]) in &shapes {
        let a = Tensor::randn(&[*m, *k], &mut rng);
        let b = Tensor::randn(&[*k, *n], &mut rng);

        // f32 domain: the ordinary dequantized matmul.
        let reference =
            with_backend(GemmBackend::Scalar, || qt_par::serial(|| a.matmul(&b)));
        fnv1a64(&mut digest, reference.data());
        let backs = backend_sweep(&format!("GEMM {name}"), iters, &reference, || a.matmul(&b));
        eprintln!("[perf_kernels] gemm {name} [{m}x{k}x{n}] f32: {backs:?}");
        gemm_rows.push(json!({
            "model": name.clone(),
            "shape": json!([*m as u64, *k as u64, *n as u64]),
            "domain": "f32",
            "backend": backs,
        }));

        // Code domain: weight stored as codes, decoded once into packed
        // panels *outside* the timed loop (the steady-state serving shape
        // — the pack is cached per site in QuantCtx).
        let aq = fq.quantize(&a);
        let wq = fq.quantize_to_codes(&b).expect("P8E1 is not Fp32");
        let pack = PackedQuantB::pack(&wq);
        let code_ref = with_backend(GemmBackend::Scalar, || {
            qt_par::serial(|| aq.matmul(&wq.dequantize()))
        });
        fnv1a64(&mut digest, code_ref.data());
        let backs = backend_sweep(&format!("code GEMM {name}"), iters, &code_ref, || {
            matmul_codes(&aq, &pack)
        });
        eprintln!("[perf_kernels] gemm {name} [{m}x{k}x{n}] code: {backs:?}");
        gemm_rows.push(json!({
            "model": name.clone(),
            "shape": json!([*m as u64, *k as u64, *n as u64]),
            "domain": "code",
            "backend": backs,
        }));

        // Product-LUT domain: both operands as 8-bit codes, products read
        // from the 2^16-entry table (no float multiply at all). The table
        // walk is scalar, so this row sweeps pool sizes only.
        let acodes = fq.quantize_to_codes(&a).expect("P8E1 is not Fp32");
        let cpack = PackedCodesB::pack(&wq);
        let lut = ProductLut::new(ElemFormat::P8E1, ElemFormat::P8E1).expect("8-bit");
        let lut_ref = qt_par::serial(|| matmul_product_lut(&acodes, &cpack, &lut));
        assert_eq!(
            lut_ref.data(),
            code_ref.data(),
            "product-LUT GEMM {name} diverged from the code-domain result"
        );
        let mut lut_ms = BTreeMap::new();
        for t in SWEEP {
            let (out, best) = qt_par::with_threads(t, || {
                time_ms(iters, || matmul_product_lut(&acodes, &cpack, &lut))
            });
            assert_eq!(
                out.data(),
                lut_ref.data(),
                "product-LUT GEMM {name} not bitwise-deterministic at {t} threads"
            );
            lut_ms.insert(t, best);
        }
        eprintln!("[perf_kernels] gemm {name} [{m}x{k}x{n}] lut: {lut_ms:?}");
        gemm_rows.push(json!({
            "model": name.clone(),
            "shape": json!([*m as u64, *k as u64, *n as u64]),
            "domain": "lut",
            "ms": ms_map(&lut_ms),
        }));
    }

    // ---- Perf trajectory: best SIMD/code path vs scalar f32, same run ----
    // Relative (same-machine, same-run) so the committed baseline is
    // portable across hosts: absolute ms differ, ratios travel.
    let mut per_shape = Vec::new();
    let mut scalar_t1s = Vec::new();
    let mut best_t1s = Vec::new();
    for (name, _) in &shapes {
        let rows: Vec<&Value> = gemm_rows
            .iter()
            .filter(|r| r["model"].as_str() == Some(name.as_str()))
            .collect();
        let f32_row = rows.iter().find(|r| r["domain"] == "f32").unwrap();
        let scalar_ms = t1_ms(f32_row, "scalar").expect("scalar f32 row");
        let mut best_ms = f64::INFINITY;
        let mut best_path = String::from("scalar/f32");
        for r in &rows {
            let domain = r["domain"].as_str().unwrap();
            if let Some(back) = r.get("backend").and_then(|b| b.as_object()) {
                for bname in back.keys() {
                    if domain == "f32" && bname == "scalar" {
                        continue;
                    }
                    if let Some(ms) = t1_ms(r, bname) {
                        if ms < best_ms {
                            best_ms = ms;
                            best_path = format!("{bname}/{domain}");
                        }
                    }
                }
            } else if let Some(ms) = r.get("ms").and_then(|m| m.get("t1")).and_then(|v| v.as_f64())
            {
                if ms < best_ms {
                    best_ms = ms;
                    best_path = format!("lut/{domain}");
                }
            }
        }
        scalar_t1s.push(scalar_ms);
        best_t1s.push(best_ms);
        per_shape.push(json!({
            "model": name.clone(),
            "scalar_f32_t1_ms": scalar_ms,
            "best_t1_ms": best_ms,
            "best_path": best_path,
            "speedup": scalar_ms / best_ms,
        }));
    }
    let speedups: Vec<f64> = scalar_t1s
        .iter()
        .zip(&best_t1s)
        .map(|(s, b)| s / b)
        .collect();
    let speedup = median(speedups);
    eprintln!("[perf_kernels] median best-vs-scalar-f32 speedup: {speedup:.3}x");

    // Baseline + history come from the committed results file (or an
    // explicit --baseline); the freshly measured run is appended.
    let prior_path =
        baseline_path.unwrap_or_else(|| opts.out_dir.join("BENCH_kernels.json"));
    let prior: Option<Value> = std::fs::read_to_string(&prior_path)
        .ok()
        .and_then(|s| serde_json::from_str(&s).ok());
    let baseline_speedup = prior
        .as_ref()
        .and_then(|p| p["trajectory"]["speedup_best_vs_scalar"].as_f64());
    let mut history: Vec<Value> = prior
        .as_ref()
        .and_then(|p| p["trajectory"]["history"].as_array().cloned())
        .unwrap_or_default();
    history.push(json!({
        "mode": if opts.quick { "quick" } else { "full" },
        "seed": opts.seed,
        "speedup_best_vs_scalar": speedup,
        "scalar_f32_t1_ms_median": median(scalar_t1s.clone()),
        "best_t1_ms_median": median(best_t1s.clone()),
        "active_backend": qt_tensor::kernels::active().name(),
    }));
    if history.len() > HISTORY_CAP {
        let drop = history.len() - HISTORY_CAP;
        history.drain(..drop);
    }
    let trajectory = json!({
        "speedup_best_vs_scalar": speedup,
        "baseline_speedup": baseline_speedup.map(Value::from).unwrap_or(Value::Null),
        "per_shape": Value::Array(per_shape),
        "history": Value::Array(history),
    });

    if enforce_perf {
        if speedup.is_nan() || speedup <= 1.0 {
            eprintln!(
                "[perf_kernels] PERF FAIL: best path does not beat scalar f32 ({speedup:.3}x)"
            );
            std::process::exit(1);
        }
        if let Some(base) = baseline_speedup {
            if speedup < PERF_FLOOR * base {
                eprintln!(
                    "[perf_kernels] PERF FAIL: speedup {speedup:.3}x under {PERF_FLOOR} × baseline {base:.3}x"
                );
                std::process::exit(1);
            }
            eprintln!(
                "[perf_kernels] perf gate passed: {speedup:.3}x vs baseline {base:.3}x (floor {PERF_FLOOR})"
            );
        } else {
            eprintln!("[perf_kernels] perf gate passed: {speedup:.3}x (no baseline yet)");
        }
    }

    // ---- Quantization per 8-/9-bit format ----
    let mut quant_rows = Vec::new();
    if !gemm_only {
        let elems = opts.pick(1 << 17, 1 << 14);
        let x = Tensor::randn(&[elems], &mut rng).mul_scalar(8.0);
        for fmt in [
            ElemFormat::P8E0,
            ElemFormat::P8E1,
            ElemFormat::P8E2,
            ElemFormat::E4M3,
            ElemFormat::E5M2,
            ElemFormat::E5M3,
            ElemFormat::Bf16,
        ] {
            let q = FakeQuant::new(fmt);
            let reference = qt_par::serial(|| q.quantize(&x));
            // The consuming path must agree with the borrowed path.
            assert_eq!(q.quantize_owned(x.clone()).data(), reference.data());
            let mut ms = BTreeMap::new();
            for t in SWEEP {
                let (out, best) = qt_par::with_threads(t, || time_ms(iters, || q.quantize(&x)));
                assert_eq!(
                    out.data(),
                    reference.data(),
                    "quantize {fmt:?} not bitwise-deterministic at {t} threads"
                );
                ms.insert(t, best);
            }
            eprintln!("[perf_kernels] quantize {} ({elems} elems): {ms:?}", fmt.name());
            quant_rows.push(json!({
                "format": fmt.name(),
                "elements": elems as u64,
                "ms": ms_map(&ms),
            }));
        }
    }

    // ---- Full traced forward pass ----
    let forward_row = if gemm_only {
        Value::Null
    } else {
        let cfg = TransformerConfig::gpt2_large_sim();
        let task = LmTask::new(cfg.vocab, 32, 7);
        let model = pretrain_lm(&cfg, &task, opts.pick(40, 5), opts.seed);
        let eval_data = task.dataset(opts.pick(32, 8), opts.seed ^ 0xEEE);
        let batches: Vec<_> = eval_data.chunks(8).map(|c| task.batch(c)).collect();
        let run_forward = || {
            let session = TraceSession::new("perf_kernels").handle();
            session.borrow_mut().set_meta("seed", opts.seed.to_string());
            let sim = SystolicSim::new(Accelerator::new(8, datapath_for(ElemFormat::P8E1)));
            let qctx = QuantCtx::inference(QuantScheme::posit8())
                .with_trace(Rc::clone(&session))
                .with_cycle_model(Rc::new(sim));
            let ppl = evaluate_lm_perplexity(&model, &qctx, &batches);
            drop(qctx);
            let session = Rc::try_unwrap(session).expect("sole owner").into_inner();
            (ppl, RunManifest::render_deterministic(&session))
        };
        // Reference under the *active* backend: manifests embed
        // backend-labelled counters, so the thread sweep must compare
        // against a same-backend reference. (Cross-backend equality is
        // carried by the perplexity bits and the GEMM digest instead.)
        let (ref_ppl, ref_manifest) = qt_par::serial(run_forward);
        let mut fwd_ms = BTreeMap::new();
        for t in SWEEP {
            let ((ppl, manifest), best) =
                qt_par::with_threads(t, || time_ms(iters.min(5), run_forward));
            assert_eq!(
                ppl.to_bits(),
                ref_ppl.to_bits(),
                "forward perplexity not bitwise-deterministic at {t} threads"
            );
            // Backend-labelled counters differ across backends by design,
            // so the manifest is only compared thread-to-thread here; the
            // cross-backend contract is carried by the perplexity bits
            // and the GEMM digest.
            assert_eq!(
                manifest, ref_manifest,
                "deterministic manifest differs at {t} threads"
            );
            fwd_ms.insert(t, best);
        }
        eprintln!("[perf_kernels] forward {} (ppl {ref_ppl:.3}): {fwd_ms:?}", cfg.name);
        json!({
            "model": cfg.name,
            "batches": batches.len() as u64,
            "perplexity": ref_ppl,
            "ms": ms_map(&fwd_ms),
            "deterministic": true,
        })
    };

    let doc = json!({
        "bench": "perf_kernels",
        "schema": "qt-bench/kernels/v2",
        "version": 2u64,
        "mode": if opts.quick { "quick" } else { "full" },
        "gemm_only": gemm_only,
        "seed": opts.seed,
        "threads_available": qt_par::threads() as u64,
        "sweep": json!(SWEEP.iter().map(|&t| t as u64).collect::<Vec<_>>()),
        "backends": json!(backends.iter().map(|b| b.name()).collect::<Vec<_>>()),
        "active_backend": qt_tensor::kernels::active().name(),
        "gemm": Value::Array(gemm_rows),
        "quantize": Value::Array(quant_rows),
        "forward": forward_row,
        "trajectory": trajectory,
    });
    let path = opts.out_dir.join("BENCH_kernels.json");
    let mut text = serde_json::to_string_pretty(&doc).expect("serializable");
    text.push('\n');
    // Atomic write (qt-ckpt): downstream tooling never reads a
    // half-written benchmark file, even if this process dies here.
    qt_ckpt::atomic_write_str(&path, &text).expect("write BENCH_kernels.json");
    eprintln!("[perf_kernels] wrote {}", path.display());

    // Backend-invariant digest of the reference output bits: every CI
    // backend leg must produce this exact file (cmp across legs).
    let digest_path = opts.out_dir.join("GEMM_digest.txt");
    let digest_text = format!("gemm-digest-v1 fnv1a64 {digest:016x} shapes {}\n", shapes.len());
    qt_ckpt::atomic_write_str(&digest_path, &digest_text).expect("write GEMM_digest.txt");
    eprintln!("[perf_kernels] wrote {}", digest_path.display());
}
