//! Kernel micro-benchmarks: the blocked GEMM, LUT quantization per
//! format, and a full traced forward pass, each timed at pool sizes
//! 1/2/4/8 (via `qt_par::with_threads`, independent of `QT_THREADS`).
//!
//! Besides timing, every sweep point is checked bitwise against the
//! serial result — the parallel layer's determinism contract — and the
//! forward pass additionally compares deterministic run manifests.
//! Writes `results/BENCH_kernels.json`.

use qt_accel::{Accelerator, SystolicSim};
use qt_bench::{datapath_for, pretrain_lm, Opts};
use qt_datagen::LmTask;
use qt_quant::{ElemFormat, FakeQuant, QuantScheme};
use qt_tensor::Tensor;
use qt_train::evaluate_lm_perplexity;
use qt_trace::{RunManifest, TraceSession};
use qt_transformer::{QuantCtx, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};
use serde_json::{json, Value};
use std::collections::BTreeMap;
use std::rc::Rc;
use std::time::Instant;

/// Pool sizes every kernel is swept over.
const SWEEP: [usize; 4] = [1, 2, 4, 8];

/// Best-of-`iters` wall milliseconds for `f`, after one warmup call.
fn time_ms<R>(iters: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    let mut out = f();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        out = f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (out, best)
}

fn ms_map(ms: &BTreeMap<usize, f64>) -> Value {
    let mut m = BTreeMap::new();
    for (t, v) in ms {
        m.insert(format!("t{t}"), Value::from(*v));
    }
    Value::Object(m)
}

fn main() {
    let opts = Opts::parse();
    let iters = opts.pick(20, 3);
    eprintln!(
        "[perf_kernels] pool sweep {SWEEP:?} (configured threads: {}, QT_THREADS={})",
        qt_par::threads(),
        qt_par::qt_threads_env().unwrap_or_else(|| "unset".into()),
    );

    // ---- GEMM: the tab06 model shapes (seq × hidden × ffn) ----
    let mut gemm_rows = Vec::new();
    let mut shapes: Vec<(String, [usize; 3])> = [
        TransformerConfig::gpt2_large_sim(),
        TransformerConfig::gpt2_xl_sim(),
        TransformerConfig::llama7b_sim(),
        TransformerConfig::llama13b_sim(),
    ]
    .iter()
    .map(|cfg| (cfg.name.to_string(), [32, cfg.hidden, cfg.ffn]))
    .collect();
    // One deliberately larger shape so the parallel path is exercised
    // well past the serial threshold even in --quick mode.
    shapes.push(("synthetic".into(), [128, 256, 512]));
    let mut rng = StdRng::seed_from_u64(opts.seed);
    for (name, [m, k, n]) in &shapes {
        let a = Tensor::randn(&[*m, *k], &mut rng);
        let b = Tensor::randn(&[*k, *n], &mut rng);
        let reference = qt_par::serial(|| a.matmul(&b));
        let mut ms = BTreeMap::new();
        for t in SWEEP {
            let (out, best) = qt_par::with_threads(t, || time_ms(iters, || a.matmul(&b)));
            assert_eq!(
                out.data(),
                reference.data(),
                "GEMM {name} not bitwise-deterministic at {t} threads"
            );
            ms.insert(t, best);
        }
        eprintln!("[perf_kernels] gemm {name} [{m}x{k}x{n}]: {ms:?}");
        gemm_rows.push(json!({
            "model": name.clone(),
            "shape": json!([*m as u64, *k as u64, *n as u64]),
            "ms": ms_map(&ms),
        }));
    }

    // ---- Quantization per 8-/9-bit format ----
    let mut quant_rows = Vec::new();
    let elems = opts.pick(1 << 17, 1 << 14);
    let x = Tensor::randn(&[elems], &mut rng).mul_scalar(8.0);
    for fmt in [
        ElemFormat::P8E0,
        ElemFormat::P8E1,
        ElemFormat::P8E2,
        ElemFormat::E4M3,
        ElemFormat::E5M2,
        ElemFormat::E5M3,
        ElemFormat::Bf16,
    ] {
        let q = FakeQuant::new(fmt);
        let reference = qt_par::serial(|| q.quantize(&x));
        // The consuming path must agree with the borrowed path.
        assert_eq!(q.quantize_owned(x.clone()).data(), reference.data());
        let mut ms = BTreeMap::new();
        for t in SWEEP {
            let (out, best) = qt_par::with_threads(t, || time_ms(iters, || q.quantize(&x)));
            assert_eq!(
                out.data(),
                reference.data(),
                "quantize {fmt:?} not bitwise-deterministic at {t} threads"
            );
            ms.insert(t, best);
        }
        eprintln!("[perf_kernels] quantize {} ({elems} elems): {ms:?}", fmt.name());
        quant_rows.push(json!({
            "format": fmt.name(),
            "elements": elems as u64,
            "ms": ms_map(&ms),
        }));
    }

    // ---- Full traced forward pass ----
    let cfg = TransformerConfig::gpt2_large_sim();
    let task = LmTask::new(cfg.vocab, 32, 7);
    let model = pretrain_lm(&cfg, &task, opts.pick(40, 5), opts.seed);
    let eval_data = task.dataset(opts.pick(32, 8), opts.seed ^ 0xEEE);
    let batches: Vec<_> = eval_data.chunks(8).map(|c| task.batch(c)).collect();
    let run_forward = || {
        let session = TraceSession::new("perf_kernels").handle();
        session.borrow_mut().set_meta("seed", opts.seed.to_string());
        let sim = SystolicSim::new(Accelerator::new(
            8,
            datapath_for(ElemFormat::P8E1),
        ));
        let qctx = QuantCtx::inference(QuantScheme::posit8())
            .with_trace(Rc::clone(&session))
            .with_cycle_model(Rc::new(sim));
        let ppl = evaluate_lm_perplexity(&model, &qctx, &batches);
        drop(qctx);
        let session = Rc::try_unwrap(session).expect("sole owner").into_inner();
        (ppl, RunManifest::render_deterministic(&session))
    };
    let (ref_ppl, ref_manifest) = qt_par::serial(run_forward);
    let mut fwd_ms = BTreeMap::new();
    for t in SWEEP {
        let ((ppl, manifest), best) =
            qt_par::with_threads(t, || time_ms(iters.min(5), run_forward));
        assert_eq!(
            ppl.to_bits(),
            ref_ppl.to_bits(),
            "forward perplexity not bitwise-deterministic at {t} threads"
        );
        assert_eq!(
            manifest, ref_manifest,
            "deterministic manifest differs at {t} threads"
        );
        fwd_ms.insert(t, best);
    }
    eprintln!(
        "[perf_kernels] forward {} (ppl {ref_ppl:.3}): {fwd_ms:?}",
        cfg.name
    );
    let forward_row = json!({
        "model": cfg.name,
        "batches": batches.len() as u64,
        "perplexity": ref_ppl,
        "ms": ms_map(&fwd_ms),
        "deterministic": true,
    });

    let doc = json!({
        "bench": "perf_kernels",
        "version": 1u64,
        "mode": if opts.quick { "quick" } else { "full" },
        "seed": opts.seed,
        "threads_available": qt_par::threads() as u64,
        "sweep": json!(SWEEP.iter().map(|&t| t as u64).collect::<Vec<_>>()),
        "gemm": Value::Array(gemm_rows),
        "quantize": Value::Array(quant_rows),
        "forward": forward_row,
    });
    let path = opts.out_dir.join("BENCH_kernels.json");
    let mut text = serde_json::to_string_pretty(&doc).expect("serializable");
    text.push('\n');
    // Atomic write (qt-ckpt): downstream tooling never reads a
    // half-written benchmark file, even if this process dies here.
    qt_ckpt::atomic_write_str(&path, &text).expect("write BENCH_kernels.json");
    eprintln!("[perf_kernels] wrote {}", path.display());
}
