//! **Table 4**: span F1 with the posit softmax built from the approximate
//! exponential and/or the approximate (piecewise-linear) reciprocal, on the
//! MobileBERT-style and BERT-style models.
//!
//! Reproduction target: each approximation costs little on its own and the
//! two compose with only a small additional drop, with the larger model
//! more robust.

use qt_bench::{pretrain_span, span_task_for, Opts, Table};
use qt_posit::approx::ExpApprox;
use qt_quant::{QuantScheme, SoftmaxKind};
use qt_train::evaluate_span_f1;
use qt_transformer::{QuantCtx, TransformerConfig};

fn main() {
    let opts = Opts::parse();
    let steps = opts.pick(900, 120);
    let eval_n = opts.pick(384, 64);

    let configs = [
        TransformerConfig::mobilebert_sim(),
        TransformerConfig::bert_base_sim(),
    ];
    let mut models = Vec::new();
    for cfg in &configs {
        let task = span_task_for(cfg);
        eprintln!("[tab04] pretraining {}…", cfg.name);
        let model = pretrain_span(cfg, &task, steps, opts.seed);
        let eval = task.dataset(eval_n, opts.seed ^ 0xEEE);
        models.push((model, task, eval));
    }

    let rows: Vec<(&str, Option<SoftmaxKind>)> = vec![
        ("BF16", None),
        ("Posit8 (exact softmax)", Some(SoftmaxKind::Exact)),
        (
            "Posit8 + approx e^x",
            Some(SoftmaxKind::PositApprox {
                approx_exp: true,
                approx_recip: false,
                exp: ExpApprox::PAPER_BEST,
            }),
        ),
        (
            "Posit8 + approx 1/x",
            Some(SoftmaxKind::PositApprox {
                approx_exp: false,
                approx_recip: true,
                exp: ExpApprox::PAPER_BEST,
            }),
        ),
        (
            "Posit8 + both",
            Some(SoftmaxKind::posit_full()),
        ),
    ];

    let mut table = Table::new(
        "Table 4: posit softmax approximations (synthetic SQuAD F1)",
        &["Config", "MobileBERT-sim", "BERT_base-sim"],
    );
    for (label, softmax) in rows {
        let mut cells = vec![label.to_string()];
        for (model, task, eval) in &models {
            let scheme = match softmax {
                None => QuantScheme::bf16(),
                Some(k) => QuantScheme::posit8().with_softmax(k),
            };
            let f1 = evaluate_span_f1(model, &QuantCtx::inference(scheme), task, eval, 32);
            cells.push(format!("{f1:.1}"));
        }
        table.row(&cells);
    }

    table.print();
    table
        .write_json(&opts.out_dir, "tab04_softmax_approx")
        .expect("write results");
}
