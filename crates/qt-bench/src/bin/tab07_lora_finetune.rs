//! **Table 7**: fine-tuning accuracy across methods, data types and tasks.
//!
//! For each (model, task): "Full Training FP32" trains everything from
//! scratch and doubles as the pretrained checkpoint; the LoRA rows
//! re-initialise the head, attach adapters, and fine-tune only those —
//! in BF16, Posit8, Posit8 with the approximate softmax, and FP8
//! (E4M3 fwd / E5M2 bwd), all with per-tensor gradient scaling.
//!
//! Reproduction target: every LoRA variant lands within ~1 point of the
//! BF16 LoRA run, with a tiny fraction of the trainable parameters.
//!
//! Extra flags beyond the shared harness:
//!
//! * `--models mobilebert,roberta` — substring filter on the model list
//!
//! With `--checkpoint-dir DIR` each LoRA fine-tune persists its training
//! state under `DIR/<model>-<method>-<task>/`; `--resume` picks every run
//! back up from its newest intact checkpoint, reproducing the
//! uninterrupted run's table bitwise (see DESIGN.md §10).

use qt_bench::{
    classify_task_for, lora_finetune_classify, lora_finetune_span, pretrain_classify,
    pretrain_span, span_task_for, Opts, Table,
};
use qt_datagen::ClassifyKind;
use qt_quant::QuantScheme;
use qt_train::{evaluate_classify, evaluate_span_f1};
use qt_transformer::{LoraConfig, QuantCtx, TransformerConfig};

/// `"LoRA Posit8 Approx"` → `"lora-posit8-approx"`: run ids double as
/// directory names, so keep them to lowercase alphanumerics and dashes.
fn slug(s: &str) -> String {
    s.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect()
}

fn main() {
    let opts = Opts::parse();
    let pre_steps = opts.pick(400, 80);
    let ft_steps = opts.pick(150, 40);
    let eval_n = opts.pick(256, 64);
    let mut model_filter: Vec<String> = Vec::new();
    let mut it = opts.extra.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--models" => {
                if let Some(v) = it.next() {
                    model_filter = v.split(',').map(|m| m.trim().to_lowercase()).collect();
                }
            }
            other => eprintln!("ignoring unknown argument {other:?}"),
        }
    }
    let trace = opts.open_trace("tab07_lora_finetune");

    let methods: [(&str, Option<QuantScheme>); 5] = [
        ("Full Training FP32", None),
        ("LoRA BF16", Some(QuantScheme::bf16())),
        ("LoRA Posit8", Some(QuantScheme::posit8())),
        ("LoRA Posit8 Approx", Some(QuantScheme::posit8_approx())),
        ("LoRA FP8", Some(QuantScheme::fp8())),
    ];

    let mut table = Table::new(
        "Table 7: fine-tuning accuracy by method (GLUE-style acc % / SQuAD-style F1)",
        &["Model", "Method", "#Train", "MNLI", "QNLI", "MRPC", "SST-2", "SQuAD"],
    );

    for (cfg, lora) in [
        (
            TransformerConfig::mobilebert_tiny_sim(),
            LoraConfig::mobilebert_default(),
        ),
        (
            TransformerConfig::roberta_base_sim(),
            LoraConfig::roberta_default(),
        ),
    ] {
        if !model_filter.is_empty()
            && !model_filter
                .iter()
                .any(|f| cfg.name.to_lowercase().contains(f))
        {
            eprintln!("[tab07] skipping {} (--models filter)", cfg.name);
            continue;
        }
        eprintln!("[tab07] model {}…", cfg.name);
        // Pretrain per task (the "checkpoint" each LoRA row starts from).
        let glue_tasks: Vec<_> = ClassifyKind::ALL
            .iter()
            .map(|&k| classify_task_for(&cfg, k))
            .collect();
        let glue_pretrained: Vec<_> = glue_tasks
            .iter()
            .map(|t| pretrain_classify(&cfg, t, pre_steps, opts.seed))
            .collect();
        let span_task = span_task_for(&cfg);
        let span_pretrained = pretrain_span(&cfg, &span_task, pre_steps, opts.seed);

        for (mi, (method, scheme)) in methods.iter().enumerate() {
            let mut cells = vec![cfg.name.to_string(), method.to_string()];
            let mut trainable = 0usize;
            let mut metrics = Vec::new();
            for (task, pretrained) in glue_tasks.iter().zip(&glue_pretrained) {
                let (model, mode) = match scheme {
                    None => (pretrained.clone(), qt_transformer::TrainMode::Full),
                    Some(s) => {
                        let run_id = format!(
                            "{}-{}-{}",
                            slug(cfg.name),
                            slug(method),
                            slug(&format!("{:?}", task.kind))
                        );
                        (
                            lora_finetune_classify(
                                pretrained,
                                task,
                                *s,
                                lora,
                                ft_steps,
                                2e-3,
                                opts.seed ^ mi as u64,
                                trace.as_ref(),
                                opts.ckpt_spec(&run_id).as_ref(),
                            ),
                            qt_transformer::TrainMode::Lora,
                        )
                    }
                };
                trainable = model.trainable_params(mode);
                let eval = task.dataset(eval_n, opts.seed ^ 0xEEE);
                let batches: Vec<_> = eval.chunks(32).map(|c| task.batch(c)).collect();
                // evaluate under the scheme the model was trained with
                let eval_scheme = scheme.unwrap_or_else(QuantScheme::fp32);
                let acc = evaluate_classify(&model, &QuantCtx::inference(eval_scheme), &batches);
                metrics.push(acc);
            }
            // SQuAD column
            let span_model = match scheme {
                None => span_pretrained.clone(),
                Some(s) => {
                    let run_id = format!("{}-{}-squad", slug(cfg.name), slug(method));
                    lora_finetune_span(
                        &span_pretrained,
                        &span_task,
                        *s,
                        lora,
                        ft_steps,
                        2e-3,
                        opts.seed ^ mi as u64,
                        trace.as_ref(),
                        opts.ckpt_spec(&run_id).as_ref(),
                    )
                }
            };
            let eval = span_task.dataset(eval_n, opts.seed ^ 0xEEE);
            let eval_scheme = scheme.unwrap_or_else(QuantScheme::fp32);
            let f1 = evaluate_span_f1(
                &span_model,
                &QuantCtx::inference(eval_scheme),
                &span_task,
                &eval,
                32,
            );
            metrics.push(f1);

            cells.push(format!("{:.1}k", trainable as f64 / 1000.0));
            cells.extend(metrics.iter().map(|m| format!("{m:.1}")));
            table.row(&cells);
        }
    }

    table.print();
    table
        .write_json(&opts.out_dir, "tab07_lora_finetune")
        .expect("write results");
    opts.close_trace(trace);
}
