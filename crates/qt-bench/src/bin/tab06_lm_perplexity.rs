//! **Table 6**: perplexity of the GPT-2-style and LLaMA-style causal
//! decoders on the synthetic Markov language, across Posit(8,1),
//! Posit(8,2) and E4M3 at each fusion level.
//!
//! Reproduction target: smaller models are more quantization-sensitive;
//! the larger "LLaMA" models stay near the BF16 perplexity in every format.

use qt_bench::{pretrain_lm, Opts, Table};
use qt_datagen::LmTask;
use qt_quant::{ElemFormat, FusionLevel, QuantScheme};
use qt_train::evaluate_lm_perplexity;
use qt_transformer::{QuantCtx, TransformerConfig};

fn main() {
    let opts = Opts::parse();
    let steps = opts.pick(600, 100);
    let eval_rows = opts.pick(64, 16);

    let mut table = Table::new(
        "Table 6: perplexity on the synthetic Markov language vs fusion level",
        &[
            "Model", "Data type", "BF16", "No Fusion", "+AttnScal", "+Activation", "+LayerNorm",
            "+Residual",
        ],
    );

    for cfg in [
        TransformerConfig::gpt2_large_sim(),
        TransformerConfig::gpt2_xl_sim(),
        TransformerConfig::llama7b_sim(),
        TransformerConfig::llama13b_sim(),
    ] {
        let task = LmTask::new(cfg.vocab, 32, 7);
        eprintln!("[tab06] pretraining {}…", cfg.name);
        let model = pretrain_lm(&cfg, &task, steps, opts.seed);
        let eval_data = task.dataset(eval_rows, opts.seed ^ 0xEEE);
        let batches: Vec<_> = eval_data.chunks(8).map(|c| task.batch(c)).collect();
        let ppl = |scheme: QuantScheme| {
            evaluate_lm_perplexity(&model, &QuantCtx::inference(scheme), &batches)
        };
        let bf16 = ppl(QuantScheme::bf16());
        for fmt in [ElemFormat::P8E1, ElemFormat::P8E2, ElemFormat::E4M3] {
            let mut cells = vec![cfg.name.to_string(), fmt.name().to_string(), format!("{bf16:.2}")];
            for level in FusionLevel::ALL {
                let p = ppl(QuantScheme::uniform(fmt).with_fusion(level));
                cells.push(format!("{p:.2}"));
            }
            table.row(&cells);
        }
    }

    table.print();
    table
        .write_json(&opts.out_dir, "tab06_lm_perplexity")
        .expect("write results");
}
