//! **Table 6**: perplexity of the GPT-2-style and LLaMA-style causal
//! decoders on the synthetic Markov language, across Posit(8,1),
//! Posit(8,2) and E4M3 at each fusion level.
//!
//! Reproduction target: smaller models are more quantization-sensitive;
//! the larger "LLaMA" models stay near the BF16 perplexity in every format.

use qt_accel::{Accelerator, SystolicSim};
use qt_bench::{datapath_for, pretrain_lm, Opts, Table};
use qt_datagen::LmTask;
use qt_quant::{ElemFormat, FusionLevel, QuantScheme};
use qt_train::evaluate_lm_perplexity;
use qt_transformer::{QuantCtx, TransformerConfig};
use std::rc::Rc;

fn main() {
    let opts = Opts::parse();
    let steps = opts.pick(600, 100);
    let eval_rows = opts.pick(64, 16);
    let trace = opts.open_trace("tab06_lm_perplexity");

    let mut table = Table::new(
        "Table 6: perplexity on the synthetic Markov language vs fusion level",
        &[
            "Model", "Data type", "BF16", "No Fusion", "+AttnScal", "+Activation", "+LayerNorm",
            "+Residual",
        ],
    );

    for cfg in [
        TransformerConfig::gpt2_large_sim(),
        TransformerConfig::gpt2_xl_sim(),
        TransformerConfig::llama7b_sim(),
        TransformerConfig::llama13b_sim(),
    ] {
        let task = LmTask::new(cfg.vocab, 32, 7);
        eprintln!("[tab06] pretraining {}…", cfg.name);
        let model = pretrain_lm(&cfg, &task, steps, opts.seed);
        let eval_data = task.dataset(eval_rows, opts.seed ^ 0xEEE);
        let batches: Vec<_> = eval_data.chunks(8).map(|c| task.batch(c)).collect();
        // Each evaluation gets the cycle model of the datapath its format
        // runs on, and is wrapped in a top-level span so the trace nests
        // eval → block → GEMM.
        let ppl = |scheme: QuantScheme, label: &str| {
            let mut qctx = QuantCtx::inference(scheme);
            let span = trace.as_ref().map(|t| {
                let sim = SystolicSim::new(Accelerator::new(8, datapath_for(scheme.fwd)));
                qctx = qctx
                    .clone()
                    .with_trace(Rc::clone(t))
                    .with_cycle_model(Rc::new(sim));
                t.borrow_mut().begin(label, "eval")
            });
            let p = evaluate_lm_perplexity(&model, &qctx, &batches);
            if let (Some(t), Some(span)) = (&trace, span) {
                t.borrow_mut().end(span);
            }
            p
        };
        let bf16 = ppl(QuantScheme::bf16(), &format!("{}.BF16", cfg.name));
        for fmt in [ElemFormat::P8E1, ElemFormat::P8E2, ElemFormat::E4M3] {
            let mut cells = vec![cfg.name.to_string(), fmt.name().to_string(), format!("{bf16:.2}")];
            for level in FusionLevel::ALL {
                let label = format!("{}.{}.{:?}", cfg.name, fmt.name(), level);
                let p = ppl(QuantScheme::uniform(fmt).with_fusion(level), &label);
                cells.push(format!("{p:.2}"));
            }
            table.row(&cells);
        }
    }

    table.print();
    table
        .write_json(&opts.out_dir, "tab06_lm_perplexity")
        .expect("write results");
    opts.close_trace(trace);
}
