//! **Ablation 1** (design choice, §3.4): the posit underflow policy during
//! 8-bit fine-tuning — standard posit (tiny values saturate *up* to
//! minpos) vs the paper's round-ties-to-zero.
//!
//! Reproduction target: the standard rule injects a floor of ±2^-12 into
//! every near-zero gradient, destabilising training; the paper's rule
//! tracks BF16.

use qt_bench::{classify_task_for, lora_finetune_classify, pretrain_classify, Opts, Table};
use qt_datagen::ClassifyKind;
use qt_quant::{QuantScheme, ScalingMode, UnderflowPolicy};
use qt_train::evaluate_classify;
use qt_transformer::{LoraConfig, QuantCtx, TransformerConfig};

fn main() {
    let opts = Opts::parse();
    let pre_steps = opts.pick(500, 80);
    let ft_steps = opts.pick(250, 40);
    let eval_n = opts.pick(256, 64);

    let cfg = TransformerConfig::mobilebert_sim();
    let task = classify_task_for(&cfg, ClassifyKind::Sst2);
    eprintln!("[abl01] pretraining {}…", cfg.name);
    let pretrained = pretrain_classify(&cfg, &task, pre_steps, opts.seed);
    let lora = LoraConfig::mobilebert_default();

    let mut table = Table::new(
        "Ablation: posit underflow policy during Posit8 LoRA fine-tuning (SST-2-like acc %)",
        &["Policy", "Scaling", "Accuracy"],
    );
    for (pname, policy) in [
        ("standard (saturate to minpos)", UnderflowPolicy::Standard),
        ("paper §3.4 (ties to zero)", UnderflowPolicy::RoundTiesToZero),
    ] {
        for (sname, scaling) in [
            ("none", ScalingMode::None),
            ("per-tensor", ScalingMode::PerTensorAmax { history: 16 }),
        ] {
            let scheme = QuantScheme::posit8()
                .with_underflow(policy)
                .with_scaling(scaling);
            let run_id = format!(
                "abl01-{}-{}",
                if matches!(policy, UnderflowPolicy::Standard) { "std" } else { "rtz" },
                if matches!(scaling, ScalingMode::None) { "none" } else { "amax" },
            );
            let model = lora_finetune_classify(
                &pretrained,
                &task,
                scheme,
                lora,
                ft_steps,
                2e-3,
                opts.seed,
                None,
                opts.ckpt_spec(&run_id).as_ref(),
            );
            let eval = task.dataset(eval_n, opts.seed ^ 0xEEE);
            let batches: Vec<_> = eval.chunks(32).map(|c| task.batch(c)).collect();
            let acc = evaluate_classify(&model, &QuantCtx::inference(scheme), &batches);
            table.row(&[pname.into(), sname.into(), format!("{acc:.1}")]);
        }
    }

    table.print();
    table
        .write_json(&opts.out_dir, "abl01_rounding")
        .expect("write results");
}
