//! **Figure 6**: per-layer activation distributions of the MobileBERT-style
//! model during span-extraction inference, against the binade bands where
//! Posit(8,1) has 4..1 fraction bits.
//!
//! Reproduction target: the stacked-FFN residual chain widens the
//! distribution in deeper layers, pushing mass out of posit's
//! high-precision band — compared against the BERT-style model, which
//! stays narrow.

use qt_autograd::Tape;
use qt_bench::{pretrain_span, span_task_for, Opts, Table};
use qt_quant::QuantScheme;
use qt_tensor::TensorStats;
use qt_transformer::{ProbeStore, QuantCtx, TrainMode, TransformerConfig};
use std::cell::RefCell;
use std::rc::Rc;

fn main() {
    let opts = Opts::parse();
    let steps = opts.pick(700, 100);

    let mut table = Table::new(
        "Figure 6: per-layer activation stats during inference (binades; Posit(8,1) has ≥3 fraction bits in 2^-4..2^4)",
        &[
            "Model", "Layer", "amax", "p50 binade", "p99 binade", "frac in 2^-4..2^4",
            "frac in 2^-12..2^12",
        ],
    );

    for cfg in [
        TransformerConfig::mobilebert_sim(),
        TransformerConfig::bert_base_sim(),
    ] {
        let task = span_task_for(&cfg);
        eprintln!("[fig06] pretraining {}…", cfg.name);
        let model = pretrain_span(&cfg, &task, steps, opts.seed);
        let probe = Rc::new(RefCell::new(ProbeStore::new()));
        let qctx = QuantCtx::inference(QuantScheme::fp32()).with_probe(Rc::clone(&probe));
        let eval = task.dataset(64, opts.seed ^ 0xEEE);
        let (batch, _) = task.batch(&eval);
        let mut tape = Tape::new();
        model.forward(&mut tape, &qctx, &batch, None, TrainMode::Frozen);

        let p = probe.borrow();
        for l in 0..cfg.layers {
            let needle = format!("enc.{l}.");
            let Some(hist) = p.merged_hist(&needle) else { continue };
            let entries = p.matching(&needle);
            let amax = entries.iter().map(|(_, s)| s.amax).fold(0.0f32, f32::max);
            let total: u64 = hist.iter().sum::<u64>().max(1);
            let frac_in = |lo: i32, hi: i32| {
                let lo_i = (lo - TensorStats::LOG2_LO) as usize;
                let hi_i = (hi - TensorStats::LOG2_LO) as usize;
                hist[lo_i..=hi_i].iter().sum::<u64>() as f64 / total as f64
            };
            let quantile = |q: f64| {
                let target = (q * total as f64).ceil() as u64;
                let mut acc = 0u64;
                for (i, &c) in hist.iter().enumerate() {
                    acc += c;
                    if acc >= target.max(1) {
                        return i as i32 + TensorStats::LOG2_LO;
                    }
                }
                31
            };
            table.row(&[
                cfg.name.into(),
                format!("{l}"),
                format!("{amax:.1}"),
                format!("2^{}", quantile(0.5)),
                format!("2^{}", quantile(0.99)),
                format!("{:.1}%", 100.0 * frac_in(-4, 3)),
                format!("{:.1}%", 100.0 * frac_in(-12, 11)),
            ]);
        }
    }

    table.print();
    table
        .write_json(&opts.out_dir, "fig06_activation_dist")
        .expect("write results");
}
