//! Deterministic model preparation: pre-train simulation-scale models the
//! experiment binaries share.
//!
//! All pre-training runs in FP32 with AdamW (the "pretrained checkpoint"
//! the paper downloads); quantized evaluation/fine-tuning happens after.

use qt_datagen::{AsrTask, ClassifyKind, ClassifyTask, LmTask, SpanTask};
use qt_quant::QuantScheme;
use qt_trace::TraceHandle;
use qt_train::{AdamW, Trainer};
use qt_transformer::{
    LoraConfig, Model, QuantCtx, TaskHead, TrainMode, TransformerConfig,
};
use rand::{rngs::StdRng, SeedableRng};
use std::rc::Rc;

/// Pre-train a span-extraction model (SQuAD analogue) in FP32.
pub fn pretrain_span(
    cfg: &TransformerConfig,
    task: &SpanTask,
    steps: usize,
    seed: u64,
) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Model::new(cfg.clone(), TaskHead::Span, &mut rng);
    let mut trainer = Trainer::new(
        model,
        QuantCtx::training(QuantScheme::fp32()),
        TrainMode::Full,
        AdamW::new(2e-3),
    );
    let data = task.dataset(steps * 16, seed ^ 0x51);
    for chunk in data.chunks(16).take(steps) {
        let (batch, spans) = task.batch(chunk);
        trainer.step_span(&batch, &spans);
    }
    trainer.model
}

/// Pre-train a classification model in FP32; returns the model.
pub fn pretrain_classify(
    cfg: &TransformerConfig,
    task: &ClassifyTask,
    steps: usize,
    seed: u64,
) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Model::new(cfg.clone(), TaskHead::Classify(task.kind.classes()), &mut rng);
    let mut trainer = Trainer::new(
        model,
        QuantCtx::training(QuantScheme::fp32()),
        TrainMode::Full,
        AdamW::new(2e-3),
    );
    let data = task.dataset(steps * 16, seed ^ 0xC1);
    for chunk in data.chunks(16).take(steps) {
        let (batch, labels) = task.batch(chunk);
        trainer.step_classify(&batch, &labels);
    }
    trainer.model
}

/// Pre-train a causal LM in FP32.
pub fn pretrain_lm(cfg: &TransformerConfig, task: &LmTask, steps: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Model::new(cfg.clone(), TaskHead::LmTied, &mut rng);
    let mut trainer = Trainer::new(
        model,
        QuantCtx::training(QuantScheme::fp32()),
        TrainMode::Full,
        AdamW::new(2e-3),
    );
    let data = task.dataset(steps * 8, seed ^ 0x17);
    for chunk in data.chunks(8).take(steps) {
        let (batch, targets) = task.batch(chunk);
        trainer.step_lm(&batch, &targets);
    }
    trainer.model
}

/// Pre-train an encoder-decoder transcription model in FP32.
pub fn pretrain_seq2seq(
    cfg: &TransformerConfig,
    task: &AsrTask,
    steps: usize,
    seed: u64,
) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Model::new(cfg.clone(), TaskHead::LmTied, &mut rng);
    let mut trainer = Trainer::new(
        model,
        QuantCtx::training(QuantScheme::fp32()),
        TrainMode::Full,
        AdamW::new(2e-3),
    );
    let data = task.dataset(steps * 8, seed ^ 0xA5);
    for chunk in data.chunks(8).take(steps) {
        let (enc, dec, targets) = task.batch(chunk);
        trainer.step_seq2seq(&enc, &dec, &targets);
    }
    trainer.model
}

/// Fine-tune a pretrained model with LoRA under a scheme; the head is
/// re-initialised. Returns the adapted model. With `trace`, the run's
/// steps, losses and scaler history land on that session.
#[allow(clippy::too_many_arguments)]
pub fn lora_finetune_classify(
    pretrained: &Model,
    task: &ClassifyTask,
    scheme: QuantScheme,
    lora: LoraConfig,
    steps: usize,
    lr: f32,
    seed: u64,
    trace: Option<&TraceHandle>,
) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = pretrained.clone();
    model.add_lora(lora, &mut rng);
    let mut qctx = QuantCtx::training(scheme);
    if let Some(t) = trace {
        qctx = qctx.with_trace(Rc::clone(t));
    }
    let mut trainer = Trainer::new(model, qctx, TrainMode::Lora, AdamW::new(lr));
    let data = task.dataset(steps * 16, seed ^ 0x10);
    for chunk in data.chunks(16).take(steps) {
        let (batch, labels) = task.batch(chunk);
        trainer.step_classify(&batch, &labels);
    }
    trainer.model
}

/// Fine-tune a pretrained span model with LoRA under a scheme. With
/// `trace`, the run's telemetry lands on that session.
#[allow(clippy::too_many_arguments)]
pub fn lora_finetune_span(
    pretrained: &Model,
    task: &SpanTask,
    scheme: QuantScheme,
    lora: LoraConfig,
    steps: usize,
    lr: f32,
    seed: u64,
    trace: Option<&TraceHandle>,
) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = pretrained.clone();
    model.add_lora(lora, &mut rng);
    let mut qctx = QuantCtx::training(scheme);
    if let Some(t) = trace {
        qctx = qctx.with_trace(Rc::clone(t));
    }
    let mut trainer = Trainer::new(model, qctx, TrainMode::Lora, AdamW::new(lr));
    let data = task.dataset(steps * 16, seed ^ 0x11);
    for chunk in data.chunks(16).take(steps) {
        let (batch, spans) = task.batch(chunk);
        trainer.step_span(&batch, &spans);
    }
    trainer.model
}

/// Default span task for a model config (sequence 24, its vocab).
pub fn span_task_for(cfg: &TransformerConfig) -> SpanTask {
    SpanTask::new(cfg.vocab, 24)
}

/// Default classification task for a model config.
pub fn classify_task_for(cfg: &TransformerConfig, kind: ClassifyKind) -> ClassifyTask {
    ClassifyTask::new(kind, cfg.vocab, 24)
}
