//! Deterministic model preparation: pre-train simulation-scale models the
//! experiment binaries share.
//!
//! All pre-training runs in FP32 with AdamW (the "pretrained checkpoint"
//! the paper downloads); quantized evaluation/fine-tuning happens after.

use crate::CkptSpec;
use qt_ckpt::CheckpointStore;
use qt_datagen::{AsrTask, ClassifyKind, ClassifyTask, LmTask, SpanTask};
use qt_quant::QuantScheme;
use qt_trace::TraceHandle;
use qt_train::{AdamW, Trainer};
use qt_transformer::{
    LoraConfig, Model, QuantCtx, TaskHead, TrainMode, TransformerConfig,
};
use rand::{rngs::StdRng, SeedableRng};
use std::rc::Rc;

/// Attach durable checkpointing (and optionally resume) per `spec`;
/// returns how many data batches the restored state already consumed —
/// the caller must skip that many so the resumed run replays the exact
/// remaining data order.
fn apply_ckpt_spec(
    mut trainer: Trainer<AdamW>,
    spec: Option<&CkptSpec>,
    data_seed: u64,
    scheme: QuantScheme,
    task: &str,
) -> (Trainer<AdamW>, usize) {
    let Some(spec) = spec else { return (trainer, 0) };
    let store = CheckpointStore::open(&spec.dir);
    trainer = trainer
        .with_checkpointing(store, spec.every, data_seed)
        .with_checkpoint_meta(vec![
            ("scheme".to_string(), format!("{scheme:?}")),
            ("task".to_string(), task.to_string()),
        ]);
    if spec.resume {
        if let Some(info) = trainer.resume_latest().expect("resume from checkpoint") {
            eprintln!(
                "[ckpt] resumed {} at global step {} (generation {}, fallback depth {})",
                spec.dir.display(),
                trainer.global_step(),
                info.generation,
                info.fallback_depth
            );
        }
    }
    let consumed = trainer.global_step();
    (trainer, consumed)
}

/// Pre-train a span-extraction model (SQuAD analogue) in FP32.
pub fn pretrain_span(
    cfg: &TransformerConfig,
    task: &SpanTask,
    steps: usize,
    seed: u64,
) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Model::new(cfg.clone(), TaskHead::Span, &mut rng);
    let mut trainer = Trainer::new(
        model,
        QuantCtx::training(QuantScheme::fp32()),
        TrainMode::Full,
        AdamW::new(2e-3),
    );
    let data = task.dataset(steps * 16, seed ^ 0x51);
    for chunk in data.chunks(16).take(steps) {
        let (batch, spans) = task.batch(chunk);
        trainer.step_span(&batch, &spans);
    }
    trainer.model
}

/// Pre-train a classification model in FP32; returns the model.
pub fn pretrain_classify(
    cfg: &TransformerConfig,
    task: &ClassifyTask,
    steps: usize,
    seed: u64,
) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Model::new(cfg.clone(), TaskHead::Classify(task.kind.classes()), &mut rng);
    let mut trainer = Trainer::new(
        model,
        QuantCtx::training(QuantScheme::fp32()),
        TrainMode::Full,
        AdamW::new(2e-3),
    );
    let data = task.dataset(steps * 16, seed ^ 0xC1);
    for chunk in data.chunks(16).take(steps) {
        let (batch, labels) = task.batch(chunk);
        trainer.step_classify(&batch, &labels);
    }
    trainer.model
}

/// Pre-train a causal LM in FP32.
pub fn pretrain_lm(cfg: &TransformerConfig, task: &LmTask, steps: usize, seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Model::new(cfg.clone(), TaskHead::LmTied, &mut rng);
    let mut trainer = Trainer::new(
        model,
        QuantCtx::training(QuantScheme::fp32()),
        TrainMode::Full,
        AdamW::new(2e-3),
    );
    let data = task.dataset(steps * 8, seed ^ 0x17);
    for chunk in data.chunks(8).take(steps) {
        let (batch, targets) = task.batch(chunk);
        trainer.step_lm(&batch, &targets);
    }
    trainer.model
}

/// Pre-train an encoder-decoder transcription model in FP32.
pub fn pretrain_seq2seq(
    cfg: &TransformerConfig,
    task: &AsrTask,
    steps: usize,
    seed: u64,
) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = Model::new(cfg.clone(), TaskHead::LmTied, &mut rng);
    let mut trainer = Trainer::new(
        model,
        QuantCtx::training(QuantScheme::fp32()),
        TrainMode::Full,
        AdamW::new(2e-3),
    );
    let data = task.dataset(steps * 8, seed ^ 0xA5);
    for chunk in data.chunks(8).take(steps) {
        let (enc, dec, targets) = task.batch(chunk);
        trainer.step_seq2seq(&enc, &dec, &targets);
    }
    trainer.model
}

/// Fine-tune a pretrained model with LoRA under a scheme; the head is
/// re-initialised. Returns the adapted model. With `trace`, the run's
/// steps, losses and scaler history land on that session. With `ckpt`,
/// training state is persisted per the spec, and (under `resume`) the
/// run restarts from its newest intact checkpoint, skipping exactly the
/// batches the restored state already consumed — so an interrupted and
/// a straight-through run end bitwise-identical.
#[allow(clippy::too_many_arguments)]
pub fn lora_finetune_classify(
    pretrained: &Model,
    task: &ClassifyTask,
    scheme: QuantScheme,
    lora: LoraConfig,
    steps: usize,
    lr: f32,
    seed: u64,
    trace: Option<&TraceHandle>,
    ckpt: Option<&CkptSpec>,
) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = pretrained.clone();
    model.add_lora(lora, &mut rng);
    let mut qctx = QuantCtx::training(scheme);
    if let Some(t) = trace {
        qctx = qctx.with_trace(Rc::clone(t));
    }
    let data_seed = seed ^ 0x10;
    let trainer = Trainer::new(model, qctx, TrainMode::Lora, AdamW::new(lr));
    let (mut trainer, consumed) = apply_ckpt_spec(trainer, ckpt, data_seed, scheme, "classify");
    let data = task.dataset(steps * 16, data_seed);
    for chunk in data.chunks(16).take(steps).skip(consumed) {
        let (batch, labels) = task.batch(chunk);
        trainer.step_classify(&batch, &labels);
    }
    trainer.model
}

/// Fine-tune a pretrained span model with LoRA under a scheme. With
/// `trace`, the run's telemetry lands on that session; with `ckpt`,
/// state is persisted / resumed as in [`lora_finetune_classify`].
#[allow(clippy::too_many_arguments)]
pub fn lora_finetune_span(
    pretrained: &Model,
    task: &SpanTask,
    scheme: QuantScheme,
    lora: LoraConfig,
    steps: usize,
    lr: f32,
    seed: u64,
    trace: Option<&TraceHandle>,
    ckpt: Option<&CkptSpec>,
) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = pretrained.clone();
    model.add_lora(lora, &mut rng);
    let mut qctx = QuantCtx::training(scheme);
    if let Some(t) = trace {
        qctx = qctx.with_trace(Rc::clone(t));
    }
    let data_seed = seed ^ 0x11;
    let trainer = Trainer::new(model, qctx, TrainMode::Lora, AdamW::new(lr));
    let (mut trainer, consumed) = apply_ckpt_spec(trainer, ckpt, data_seed, scheme, "span");
    let data = task.dataset(steps * 16, data_seed);
    for chunk in data.chunks(16).take(steps).skip(consumed) {
        let (batch, spans) = task.batch(chunk);
        trainer.step_span(&batch, &spans);
    }
    trainer.model
}

/// Default span task for a model config (sequence 24, its vocab).
pub fn span_task_for(cfg: &TransformerConfig) -> SpanTask {
    SpanTask::new(cfg.vocab, 24)
}

/// Default classification task for a model config.
pub fn classify_task_for(cfg: &TransformerConfig, kind: ClassifyKind) -> ClassifyTask {
    ClassifyTask::new(kind, cfg.vocab, 24)
}
