//! Aligned text tables + JSON result files.

use std::path::Path;

/// A result table: printed aligned to stdout and dumped as JSON.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Title printed above the table.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringifies every cell).
    pub fn row(&mut self, cells: &[String]) {
        self.rows.push(cells.to_vec());
    }

    /// Append a row of string slices.
    pub fn row_strs(&mut self, cells: &[&str]) {
        self.rows.push(cells.iter().map(|s| s.to_string()).collect());
    }

    /// Render aligned text.
    pub fn render(&self) -> String {
        let ncol = self
            .header
            .len()
            .max(self.rows.iter().map(|r| r.len()).max().unwrap_or(0));
        let mut widths = vec![0usize; ncol];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = widths[i].max(h.len());
        }
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for (i, w) in widths.iter().enumerate() {
                let c = cells.get(i).map(String::as_str).unwrap_or("");
                s.push_str(&format!("{c:<w$}  ", w = w));
            }
            s.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&fmt_row(r, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The table as a JSON value: `{title, header, rows}`.
    pub fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "title": self.title.clone(),
            "header": self.header.clone(),
            "rows": self.rows.clone(),
        })
    }

    /// Write `<dir>/<name>.json` with `{title, header, rows}`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write_json(&self, dir: &Path, name: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        self.write_json_to(&dir.join(format!("{name}.json")))
    }

    /// Write the JSON form to an explicit path (creating parent
    /// directories), for binaries with a `--json <path>` flag. The write
    /// is atomic (temp + fsync + rename), so a crash mid-write never
    /// leaves a truncated result file behind.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write_json_to(&self, path: &Path) -> std::io::Result<()> {
        let mut text = serde_json::to_string_pretty(&self.to_value()).expect("serializable");
        text.push('\n');
        qt_ckpt::atomic_write_str(path, &text)
    }
}

/// Format a float with `digits` decimals.
pub fn fmt(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let mut t = Table::new("T", &["a", "long-header"]);
        t.row_strs(&["x", "1"]);
        t.row_strs(&["longer-cell", "2"]);
        let r = t.render();
        assert!(r.contains("== T =="));
        let lines: Vec<&str> = r.lines().collect();
        // columns align: '1' and '2' start at the same offset
        let p1 = lines[3].find('1').unwrap();
        let p2 = lines[4].find('2').unwrap();
        assert_eq!(p1, p2);
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("qt-bench-test");
        let mut t = Table::new("J", &["c"]);
        t.row_strs(&["v"]);
        t.write_json(&dir, "t").unwrap();
        let s = std::fs::read_to_string(dir.join("t.json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v["rows"][0][0], "v");
    }

    #[test]
    fn explicit_path_matches_value() {
        let path = std::env::temp_dir().join("qt-bench-test-explicit/sub/x.json");
        let mut t = Table::new("E", &["a", "b"]);
        t.row_strs(&["1", "2"]);
        t.write_json_to(&path).unwrap();
        let s = std::fs::read_to_string(&path).unwrap();
        let v: serde_json::Value = serde_json::from_str(&s).unwrap();
        assert_eq!(v, t.to_value());
        assert_eq!(v["header"][1], "b");
    }
}
