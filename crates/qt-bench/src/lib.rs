//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md for the experiment index).
//!
//! Each binary:
//!
//! 1. parses [`Opts`] (`--quick` shrinks datasets/steps for CI),
//! 2. pre-trains the required simulation-scale models deterministically,
//! 3. evaluates the paper's sweep,
//! 4. prints an aligned text [`Table`] and writes `results/<name>.json`.

#![warn(missing_docs)]

pub mod prep;
pub mod table;

pub use prep::*;
pub use table::Table;

use qt_trace::{RunManifest, TraceHandle, TraceSession};

/// The accelerator datapath an element format would run on — used by
/// the binaries to pick the cycle model matching each evaluated scheme.
pub fn datapath_for(fmt: qt_quant::ElemFormat) -> qt_accel::Datapath {
    use qt_quant::ElemFormat as F;
    match fmt {
        F::P8E0 | F::P8E1 | F::P8E2 | F::P16E1 => qt_accel::Datapath::Posit8,
        F::E4M3 | F::E5M2 | F::E5M3 => qt_accel::Datapath::HybridFp8,
        F::Fp32 | F::Bf16 => qt_accel::Datapath::Bf16,
    }
}

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Reduced dataset/steps for smoke runs (`--quick`).
    pub quick: bool,
    /// Output directory for JSON results (`--out DIR`, default `results`).
    pub out_dir: std::path::PathBuf,
    /// Master seed (`--seed N`, default 42).
    pub seed: u64,
    /// Chrome `trace_event` output path (`--trace-out PATH`); a JSONL
    /// event stream lands next to it with the extension `jsonl`.
    pub trace_out: Option<std::path::PathBuf>,
    /// Deterministic run-manifest output path (`--manifest-out PATH`).
    pub manifest_out: Option<std::path::PathBuf>,
    /// Root directory for durable training checkpoints
    /// (`--checkpoint-dir DIR`); each fine-tuning run gets its own
    /// subdirectory keyed by run id. `None` disables checkpointing.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Checkpoint every N global steps (`--checkpoint-every N`,
    /// default 25).
    pub checkpoint_every: usize,
    /// Resume each fine-tuning run from its newest intact checkpoint
    /// instead of starting fresh (`--resume`).
    pub resume: bool,
    /// Arguments the shared parser did not recognise, in order — binaries
    /// with extra flags (e.g. `tab09`'s campaign knobs) consume these.
    pub extra: Vec<String>,
}

/// Checkpoint policy for one fine-tuning run, derived from [`Opts`] by
/// [`Opts::ckpt_spec`] — carries the run's private store directory.
#[derive(Debug, Clone)]
pub struct CkptSpec {
    /// Store directory for this run (root dir / run id).
    pub dir: std::path::PathBuf,
    /// Save every N global steps.
    pub every: usize,
    /// Resume from the newest intact generation before training.
    pub resume: bool,
}

impl Opts {
    /// Parse from `std::env::args`.
    pub fn parse() -> Self {
        let mut quick = false;
        let mut out_dir = std::path::PathBuf::from("results");
        let mut seed = 42u64;
        let mut trace_out = None;
        let mut manifest_out = None;
        let mut checkpoint_dir = None;
        let mut checkpoint_every = 25usize;
        let mut resume = false;
        let mut extra = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--out" => {
                    if let Some(d) = args.next() {
                        out_dir = d.into();
                    }
                }
                "--seed" => {
                    if let Some(s) = args.next() {
                        seed = s.parse().unwrap_or(42);
                    }
                }
                "--trace-out" => trace_out = args.next().map(Into::into),
                "--manifest-out" => manifest_out = args.next().map(Into::into),
                "--checkpoint-dir" => checkpoint_dir = args.next().map(Into::into),
                "--checkpoint-every" => {
                    if let Some(n) = args.next() {
                        checkpoint_every = n.parse().unwrap_or(25).max(1);
                    }
                }
                "--resume" => resume = true,
                _ => extra.push(a),
            }
        }
        Self {
            quick,
            out_dir,
            seed,
            trace_out,
            manifest_out,
            checkpoint_dir,
            checkpoint_every,
            resume,
            extra,
        }
    }

    /// Checkpoint policy for the run named `run_id`, or `None` when
    /// `--checkpoint-dir` was not given. Each run id maps to its own
    /// subdirectory so concurrent fine-tunes never share a store.
    pub fn ckpt_spec(&self, run_id: &str) -> Option<CkptSpec> {
        self.checkpoint_dir.as_ref().map(|root| CkptSpec {
            dir: root.join(run_id),
            every: self.checkpoint_every,
            resume: self.resume,
        })
    }

    /// `full` normally, `quick` under `--quick`.
    pub fn pick(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }

    /// A copy of these options whose `--trace-out` / `--manifest-out`
    /// paths carry `_label` before the extension, so a binary that runs
    /// several configurations (e.g. `fleet_bench --policy all`) writes
    /// one artifact set per configuration instead of overwriting the
    /// same file on every [`Opts::close_trace`].
    pub fn scoped(&self, label: &str) -> Self {
        let suffix = |p: &std::path::PathBuf| -> std::path::PathBuf {
            let ext = p.extension().and_then(|e| e.to_str()).unwrap_or("");
            let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("out");
            let name = if ext.is_empty() {
                format!("{stem}_{label}")
            } else {
                format!("{stem}_{label}.{ext}")
            };
            p.with_file_name(name)
        };
        let mut out = self.clone();
        out.trace_out = self.trace_out.as_ref().map(&suffix);
        out.manifest_out = self.manifest_out.as_ref().map(&suffix);
        out
    }

    /// Open a trace session named after the binary when `--trace-out` or
    /// `--manifest-out` was given, annotated with the run's seed and
    /// mode; `None` otherwise (the hot path stays untraced).
    pub fn open_trace(&self, bin: &str) -> Option<TraceHandle> {
        if self.trace_out.is_none() && self.manifest_out.is_none() {
            return None;
        }
        let mut session = TraceSession::new(bin);
        session.set_meta("bin", bin);
        session.set_meta("seed", self.seed.to_string());
        session.set_meta("mode", if self.quick { "quick" } else { "full" });
        Some(session.handle())
    }

    /// Write every requested telemetry artifact from a finished session:
    /// the Chrome trace (plus a JSONL sibling) for `--trace-out`, the
    /// deterministic manifest for `--manifest-out`, and a top-10 cycle /
    /// saturation report to stderr.
    pub fn close_trace(&self, trace: Option<TraceHandle>) {
        let Some(trace) = trace else { return };
        {
            // Cumulative qt-par chunk count: deterministic for a given
            // workload (chunk boundaries never depend on the pool size).
            let mut session = trace.borrow_mut();
            session
                .metrics_mut()
                .counter_add("par.chunk_tasks", &[], qt_par::tasks_executed());
        }
        let session = trace.borrow();
        // Atomic writes (qt-ckpt): a crash mid-export never leaves a
        // truncated trace or manifest behind, and parent dirs are created.
        if let Some(path) = &self.trace_out {
            qt_ckpt::atomic_write_str(path, &qt_trace::chrome_trace(&session))
                .unwrap_or_else(|e| eprintln!("trace-out {}: {e}", path.display()));
            let jsonl = path.with_extension("jsonl");
            qt_ckpt::atomic_write_str(&jsonl, &qt_trace::jsonl(&session))
                .unwrap_or_else(|e| eprintln!("trace-out {}: {e}", jsonl.display()));
        }
        if let Some(path) = &self.manifest_out {
            qt_ckpt::atomic_write_str(path, &RunManifest::render(&session))
                .unwrap_or_else(|e| eprintln!("manifest-out {}: {e}", path.display()));
        }
        eprintln!("{}", qt_trace::trace_report(&session, 10));
    }
}
