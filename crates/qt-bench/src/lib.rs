//! Shared harness for the experiment binaries that regenerate every table
//! and figure of the paper (see DESIGN.md for the experiment index).
//!
//! Each binary:
//!
//! 1. parses [`Opts`] (`--quick` shrinks datasets/steps for CI),
//! 2. pre-trains the required simulation-scale models deterministically,
//! 3. evaluates the paper's sweep,
//! 4. prints an aligned text [`Table`] and writes `results/<name>.json`.

#![warn(missing_docs)]

pub mod prep;
pub mod table;

pub use prep::*;
pub use table::Table;

/// Command-line options shared by all experiment binaries.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Reduced dataset/steps for smoke runs (`--quick`).
    pub quick: bool,
    /// Output directory for JSON results (`--out DIR`, default `results`).
    pub out_dir: std::path::PathBuf,
    /// Master seed (`--seed N`, default 42).
    pub seed: u64,
    /// Arguments the shared parser did not recognise, in order — binaries
    /// with extra flags (e.g. `tab09`'s campaign knobs) consume these.
    pub extra: Vec<String>,
}

impl Opts {
    /// Parse from `std::env::args`.
    pub fn parse() -> Self {
        let mut quick = false;
        let mut out_dir = std::path::PathBuf::from("results");
        let mut seed = 42u64;
        let mut extra = Vec::new();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => quick = true,
                "--out" => {
                    if let Some(d) = args.next() {
                        out_dir = d.into();
                    }
                }
                "--seed" => {
                    if let Some(s) = args.next() {
                        seed = s.parse().unwrap_or(42);
                    }
                }
                _ => extra.push(a),
            }
        }
        Self {
            quick,
            out_dir,
            seed,
            extra,
        }
    }

    /// `full` normally, `quick` under `--quick`.
    pub fn pick(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}
