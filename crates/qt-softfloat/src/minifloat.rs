//! Generic small binary floating-point formats (`E<e>M<m>`).
//!
//! A [`Minifloat`] is parameterised by a [`FloatSpec`] describing the number
//! of exponent and mantissa bits and whether the format reserves the
//! all-ones exponent for infinities and NaNs (IEEE-style, like E5M2) or
//! extends the top binade with finite values and keeps a single NaN encoding
//! (the OCP "FN" convention used by E4M3).

use core::fmt;
use core::marker::PhantomData;

/// Static description of a minifloat format.
///
/// Implementations are zero-sized marker types; see [`E4M3`], [`E5M2`] and
/// [`E5M3`] for the formats used in the paper.
pub trait FloatSpec: Copy + Clone + fmt::Debug + PartialEq + Eq + 'static {
    /// Number of exponent bits.
    const EXP_BITS: u32;
    /// Number of mantissa (fraction) bits.
    const MAN_BITS: u32;
    /// If `true`, the all-ones exponent encodes finite values except for the
    /// single all-ones mantissa pattern, which is NaN ("FN" convention).
    /// If `false`, the all-ones exponent encodes infinity/NaN (IEEE).
    const FINITE_ONLY: bool;
    /// Short human-readable name, e.g. `"E4M3"`.
    const NAME: &'static str;

    /// Total storage bits (1 sign + exponent + mantissa).
    #[inline]
    fn total_bits() -> u32 {
        1 + Self::EXP_BITS + Self::MAN_BITS
    }

    /// Exponent bias.
    #[inline]
    fn bias() -> i32 {
        (1i32 << (Self::EXP_BITS - 1)) - 1
    }

    /// Largest finite representable magnitude.
    fn max_value() -> f64 {
        let bias = Self::bias();
        if Self::FINITE_ONLY {
            // Top binade is usable except the all-ones mantissa (NaN).
            let emax = ((1i32 << Self::EXP_BITS) - 1) - bias;
            let man = 2.0 - 2.0 * exp2i(-(Self::MAN_BITS as i32));
            man * exp2i(emax)
        } else {
            let emax = ((1i32 << Self::EXP_BITS) - 2) - bias;
            let man = 2.0 - exp2i(-(Self::MAN_BITS as i32));
            man * exp2i(emax)
        }
    }

    /// Smallest positive normal magnitude.
    fn min_positive_normal() -> f64 {
        exp2i(1 - Self::bias())
    }

    /// Smallest positive (subnormal) magnitude.
    fn min_positive() -> f64 {
        exp2i(1 - Self::bias() - Self::MAN_BITS as i32)
    }
}

#[inline]
fn exp2i(e: i32) -> f64 {
    // Exact for the exponent ranges used by small formats.
    libm::ldexp(1.0, e)
}

/// NVIDIA/OCP `E4M3` (4 exponent bits, 3 mantissa bits, finite-only with a
/// single NaN; maximum magnitude 448). Used for forward-pass tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpecE4M3;
impl FloatSpec for SpecE4M3 {
    const EXP_BITS: u32 = 4;
    const MAN_BITS: u32 = 3;
    const FINITE_ONLY: bool = true;
    const NAME: &'static str = "E4M3";
}

/// NVIDIA/OCP `E5M2` (5 exponent bits, 2 mantissa bits, IEEE-style inf/NaN;
/// maximum finite magnitude 57344). Used for backward-pass gradients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpecE5M2;
impl FloatSpec for SpecE5M2 {
    const EXP_BITS: u32 = 5;
    const MAN_BITS: u32 = 2;
    const FINITE_ONLY: bool = false;
    const NAME: &'static str = "E5M2";
}

/// The hybrid `E5M3` format (5 exponent bits, 3 mantissa bits) used by the
/// paper's "hybrid FP8" MAC datapath, a superset of both E4M3 and E5M2
/// operand grids (section 7.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpecE5M3;
impl FloatSpec for SpecE5M3 {
    const EXP_BITS: u32 = 5;
    const MAN_BITS: u32 = 3;
    const FINITE_ONLY: bool = false;
    const NAME: &'static str = "E5M3";
}

/// A value of a small floating-point format described by spec `S`.
///
/// Stored as its bit pattern (right-aligned in a `u16`). All conversions are
/// bit-exact; arithmetic is performed by converting to `f64`, operating, and
/// rounding the result back (round-to-nearest-even), which matches a
/// correctly-rounded hardware implementation.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Minifloat<S: FloatSpec> {
    bits: u16,
    _spec: PhantomData<S>,
}

/// 8-bit E4M3 value (OCP FP8, forward-pass format).
pub type E4M3 = Minifloat<SpecE4M3>;
/// 8-bit E5M2 value (OCP FP8, backward-pass format).
pub type E5M2 = Minifloat<SpecE5M2>;
/// 9-bit hybrid E5M3 value (MAC-internal format).
pub type E5M3 = Minifloat<SpecE5M3>;

impl<S: FloatSpec> Minifloat<S> {
    /// Positive zero.
    pub const ZERO: Self = Self {
        bits: 0,
        _spec: PhantomData,
    };

    /// Construct from raw bits (low `1 + E + M` bits are significant).
    ///
    /// Bits above the format width are masked off.
    #[inline]
    pub fn from_bits(bits: u16) -> Self {
        let mask = ((1u32 << S::total_bits()) - 1) as u16;
        Self {
            bits: bits & mask,
            _spec: PhantomData,
        }
    }

    /// Raw bit pattern, right-aligned.
    #[inline]
    pub fn bits(self) -> u16 {
        self.bits
    }

    /// The largest finite value of the format.
    pub fn max() -> Self {
        Self::from_f64_mode(S::max_value(), true)
    }

    /// The smallest positive subnormal value of the format.
    pub fn min_positive() -> Self {
        Self::from_f64_mode(S::min_positive(), true)
    }

    /// Round an `f32` to the nearest representable value, saturating on
    /// overflow (the behaviour used for DNN tensor quantization).
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        Self::from_f64_mode(x as f64, true)
    }

    /// Round an `f64` to the nearest representable value, saturating on
    /// overflow.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        Self::from_f64_mode(x, true)
    }

    /// Round an `f64` to the nearest representable value with IEEE overflow
    /// semantics: values beyond the largest finite value become infinity
    /// (IEEE formats) or NaN (finite-only formats).
    #[inline]
    pub fn from_f64_ieee(x: f64) -> Self {
        Self::from_f64_mode(x, false)
    }

    fn nan_bits() -> u16 {
        if S::FINITE_ONLY {
            // all-ones exponent + all-ones mantissa, sign 0
            (((1u32 << S::EXP_BITS) - 1) << S::MAN_BITS | ((1 << S::MAN_BITS) - 1)) as u16
        } else {
            // all-ones exponent + quiet bit
            ((((1u32 << S::EXP_BITS) - 1) << S::MAN_BITS) | (1 << (S::MAN_BITS - 1))) as u16
        }
    }

    fn inf_bits() -> Option<u16> {
        if S::FINITE_ONLY {
            None
        } else {
            Some((((1u32 << S::EXP_BITS) - 1) as u16) << S::MAN_BITS)
        }
    }

    fn from_f64_mode(x: f64, saturate: bool) -> Self {
        let sign = if x.is_sign_negative() { 1u16 } else { 0 };
        let sign_bit = sign << (S::EXP_BITS + S::MAN_BITS);
        if x.is_nan() {
            return Self::from_bits(Self::nan_bits());
        }
        let a = x.abs();
        if a == 0.0 {
            return Self::from_bits(sign_bit);
        }
        let max = S::max_value();
        if a.is_infinite() {
            return if saturate {
                let m = Self::max();
                Self::from_bits(sign_bit | m.bits())
            } else {
                match Self::inf_bits() {
                    Some(b) => Self::from_bits(sign_bit | b),
                    None => Self::from_bits(Self::nan_bits()),
                }
            };
        }
        let bias = S::bias();
        // Unbiased exponent of a (a is a normal f64 whenever it matters:
        // f64 subnormals are far below the smallest subnormal of any
        // format here and round to zero through the same path).
        let e = ilogb(a);
        let min_lsb = 1 - bias - S::MAN_BITS as i32;
        let lsb = (e - S::MAN_BITS as i32).max(min_lsb);
        let scaled = libm::ldexp(a, -lsb);
        // `scaled` fits comfortably in f64's 53-bit mantissa for all formats
        // here, so rounding it to an integer is the exact RNE quantization.
        let r = round_ties_even(scaled);
        if r == 0.0 {
            return Self::from_bits(sign_bit); // underflow to zero
        }
        let v = libm::ldexp(r, lsb);
        if v > max {
            return if saturate {
                let m = Self::max();
                Self::from_bits(sign_bit | m.bits())
            } else {
                match Self::inf_bits() {
                    Some(b) => Self::from_bits(sign_bit | b),
                    None => Self::from_bits(Self::nan_bits()),
                }
            };
        }
        // Encode v exactly: recompute exponent (mantissa rounding may have
        // carried into the next binade).
        let ev = ilogb(v);
        let (exp_field, man_field) = if ev < 1 - bias {
            // Subnormal: exponent field 0, mantissa = v / 2^(1-bias-M).
            let man = libm::ldexp(v, -(1 - bias - S::MAN_BITS as i32));
            (0u16, man as u16)
        } else {
            let man = libm::ldexp(v, -(ev - S::MAN_BITS as i32)) as u64;
            let man_field = (man - (1 << S::MAN_BITS)) as u16;
            (((ev + bias) as u16), man_field)
        };
        let bits = sign_bit | (exp_field << S::MAN_BITS) | man_field;
        debug_assert!(
            (exp_field as u32) < (1 << S::EXP_BITS)
                || (S::FINITE_ONLY && (exp_field as u32) == (1 << S::EXP_BITS) - 1)
        );
        Self::from_bits(bits)
    }

    /// Convert to `f64` exactly.
    pub fn to_f64(self) -> f64 {
        let bits = self.bits();
        let man_mask = (1u16 << S::MAN_BITS) - 1;
        let man = (bits & man_mask) as u64;
        let exp = ((bits >> S::MAN_BITS) & ((1 << S::EXP_BITS) - 1) as u16) as i32;
        let sign = (bits >> (S::EXP_BITS + S::MAN_BITS)) & 1;
        let bias = S::bias();
        let a = if exp == 0 {
            // subnormal
            libm::ldexp(man as f64, 1 - bias - S::MAN_BITS as i32)
        } else if exp == (1 << S::EXP_BITS) - 1 && !S::FINITE_ONLY {
            if man == 0 {
                f64::INFINITY
            } else {
                f64::NAN
            }
        } else if S::FINITE_ONLY && bits & !( (1u16) << (S::EXP_BITS + S::MAN_BITS) ) == Self::nan_bits() {
            f64::NAN
        } else {
            libm::ldexp((man + (1 << S::MAN_BITS)) as f64, exp - bias - S::MAN_BITS as i32)
        };
        if sign == 1 {
            -a
        } else {
            a
        }
    }

    /// Convert to `f32` (exact; every minifloat value is exactly
    /// representable in `f32`).
    #[inline]
    pub fn to_f32(self) -> f32 {
        self.to_f64() as f32
    }

    /// `true` if the value is NaN.
    pub fn is_nan(self) -> bool {
        self.to_f64().is_nan()
    }

    /// Iterate over all finite non-negative values of the format, in
    /// increasing order. Useful for exhaustive property tests and the
    /// decimal-accuracy analysis of Figure 4.
    pub fn positive_finite_values() -> impl Iterator<Item = f64> {
        let count = 1u32 << (S::EXP_BITS + S::MAN_BITS);
        (0..count as u16)
            .map(|b| Self::from_bits(b).to_f64())
            .filter(|v| v.is_finite())
    }

    /// Quantize `x` to the nearest representable value (saturating) and
    /// return it as `f64`. The scalar fake-quantization primitive.
    #[inline]
    pub fn quantize(x: f64) -> f64 {
        Self::from_f64(x).to_f64()
    }
}

impl<S: FloatSpec> fmt::Debug for Minifloat<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", S::NAME, self.to_f64())
    }
}

impl<S: FloatSpec> fmt::Display for Minifloat<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

impl<S: FloatSpec> Default for Minifloat<S> {
    fn default() -> Self {
        Self::ZERO
    }
}

impl<S: FloatSpec> PartialOrd for Minifloat<S> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        self.to_f64().partial_cmp(&other.to_f64())
    }
}

impl<S: FloatSpec> core::ops::Add for Minifloat<S> {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::from_f64(self.to_f64() + rhs.to_f64())
    }
}

impl<S: FloatSpec> core::ops::Sub for Minifloat<S> {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::from_f64(self.to_f64() - rhs.to_f64())
    }
}

impl<S: FloatSpec> core::ops::Mul for Minifloat<S> {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::from_f64(self.to_f64() * rhs.to_f64())
    }
}

impl<S: FloatSpec> core::ops::Div for Minifloat<S> {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        Self::from_f64(self.to_f64() / rhs.to_f64())
    }
}

impl<S: FloatSpec> core::ops::Neg for Minifloat<S> {
    type Output = Self;
    fn neg(self) -> Self {
        let sign_bit = 1u16 << (S::EXP_BITS + S::MAN_BITS);
        Self::from_bits(self.bits() ^ sign_bit)
    }
}

#[inline]
fn ilogb(a: f64) -> i32 {
    debug_assert!(a > 0.0 && a.is_finite());
    let bits = a.to_bits();
    let be = ((bits >> 52) & 0x7ff) as i32;
    if be == 0 {
        // f64 subnormal: normalize via multiplication.
        return ilogb(a * libm::ldexp(1.0, 128)) - 128;
    }
    be - 1023
}

#[inline]
fn round_ties_even(x: f64) -> f64 {
    // f64::round_ties_even is stable; use libm variant for determinism.
    libm::rint(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4m3_constants() {
        assert_eq!(SpecE4M3::max_value(), 448.0);
        assert_eq!(SpecE4M3::min_positive_normal(), libm::ldexp(1.0, -6));
        assert_eq!(SpecE4M3::min_positive(), libm::ldexp(1.0, -9));
    }

    #[test]
    fn e5m2_constants() {
        assert_eq!(SpecE5M2::max_value(), 57344.0);
        assert_eq!(SpecE5M2::min_positive_normal(), libm::ldexp(1.0, -14));
        assert_eq!(SpecE5M2::min_positive(), libm::ldexp(1.0, -16));
    }

    #[test]
    fn roundtrip_all_e4m3() {
        for b in 0u16..256 {
            let v = E4M3::from_bits(b).to_f64();
            if v.is_nan() {
                assert!(E4M3::from_f64(v).is_nan());
            } else {
                let r = E4M3::from_f64(v);
                assert_eq!(r.to_f64(), v, "bits {b:#04x}");
            }
        }
    }

    #[test]
    fn roundtrip_all_e5m2() {
        for b in 0u16..256 {
            let v = E5M2::from_bits(b).to_f64();
            if v.is_nan() {
                continue;
            }
            if v.is_infinite() {
                // saturating conversion clamps infinities
                assert_eq!(E5M2::from_f64(v).to_f64().abs(), 57344.0);
                continue;
            }
            assert_eq!(E5M2::from_f64(v).to_f64(), v, "bits {b:#04x}");
        }
    }

    #[test]
    fn rne_midpoints() {
        // Between 1.0 (mantissa 000) and 1.125 (mantissa 001) in E4M3 the
        // midpoint 1.0625 rounds to even (1.0).
        assert_eq!(E4M3::quantize(1.0625), 1.0);
        // Between 1.125 and 1.25 the midpoint 1.1875 rounds to even (1.25).
        assert_eq!(E4M3::quantize(1.1875), 1.25);
    }

    #[test]
    fn saturation_and_ieee_overflow() {
        assert_eq!(E4M3::from_f64(1e6).to_f64(), 448.0);
        assert_eq!(E4M3::from_f64(-1e6).to_f64(), -448.0);
        assert!(E4M3::from_f64_ieee(1e6).is_nan());
        assert_eq!(E5M2::from_f64(1e9).to_f64(), 57344.0);
        assert!(E5M2::from_f64_ieee(1e9).to_f64().is_infinite());
    }

    #[test]
    fn e4m3_near_max_rounding() {
        // 448..464 rounds down to 448; above the midpoint saturates to max
        // under saturating conversion.
        assert_eq!(E4M3::quantize(450.0), 448.0);
        assert_eq!(E4M3::quantize(470.0), 448.0);
    }

    #[test]
    fn subnormal_rounding() {
        let minsub = SpecE4M3::min_positive();
        assert_eq!(E4M3::quantize(minsub), minsub);
        assert_eq!(E4M3::quantize(minsub * 0.49), 0.0);
        assert_eq!(E4M3::quantize(minsub * 0.51), minsub);
        // exact midpoint ties to even (zero)
        assert_eq!(E4M3::quantize(minsub * 0.5), 0.0);
        // 1.5 * minsub is a midpoint between minsub and 2*minsub; ties to
        // even picks 2*minsub (mantissa 10).
        assert_eq!(E4M3::quantize(minsub * 1.5), minsub * 2.0);
    }

    #[test]
    fn negative_zero_sign() {
        let z = E4M3::from_f64(-0.0);
        assert_eq!(z.to_f64(), 0.0);
        assert_eq!(z.bits() >> 7, 1);
    }

    #[test]
    fn e5m3_superset_of_both_fp8() {
        // Every finite E4M3 and E5M2 value must be exactly representable in
        // the hybrid E5M3 format (the premise of the paper's hybrid MAC).
        for b in 0u16..256 {
            let v = E4M3::from_bits(b).to_f64();
            if v.is_finite() {
                assert_eq!(E5M3::quantize(v), v, "E4M3 bits {b:#04x}");
            }
            let v = E5M2::from_bits(b).to_f64();
            if v.is_finite() {
                assert_eq!(E5M3::quantize(v), v, "E5M2 bits {b:#04x}");
            }
        }
    }

    #[test]
    fn arithmetic_ops() {
        let a = E4M3::from_f32(2.0);
        let b = E4M3::from_f32(3.0);
        assert_eq!((a + b).to_f32(), 5.0);
        assert_eq!((a * b).to_f32(), 6.0);
        assert_eq!((b - a).to_f32(), 1.0);
        assert_eq!((b / a).to_f32(), 1.5);
        assert_eq!((-a).to_f32(), -2.0);
    }

    #[test]
    fn monotone_quantization() {
        // quantize is monotone non-decreasing.
        let mut prev = f64::NEG_INFINITY;
        let mut x = -500.0;
        while x < 500.0 {
            let q = E4M3::quantize(x);
            assert!(q >= prev, "x={x} q={q} prev={prev}");
            prev = q;
            x += 0.37;
        }
    }
}
