//! Bit-exact software implementations of the small floating-point formats
//! used by the paper *8-bit Transformer Inference and Fine-tuning for Edge
//! Accelerators* (ASPLOS 2024): BFloat16 and the 8-/9-bit minifloats
//! E4M3, E5M2 and the hybrid E5M3 MAC format.
//!
//! All formats are plain `Copy` value types backed by their bit patterns.
//! Conversions from `f32`/`f64` use round-to-nearest-even and expose both
//! IEEE-style overflow (to infinity / NaN) and the saturating behaviour used
//! for DNN training.
//!
//! # Example
//!
//! ```
//! use qt_softfloat::{E4M3, Bf16};
//!
//! let x = E4M3::from_f32(0.3);
//! assert!((x.to_f32() - 0.3).abs() < 0.02);
//! assert_eq!(E4M3::max().to_f32(), 448.0);
//!
//! let y = Bf16::from_f32(1.0 + 1e-4); // rounds to 1.0
//! assert_eq!(y.to_f32(), 1.0);
//! ```

#![warn(missing_docs)]

pub mod accuracy;
mod bf16;
mod minifloat;

pub use accuracy::{decimal_accuracy, decimal_accuracy_of_rounding};
pub use bf16::Bf16;
pub use minifloat::{FloatSpec, Minifloat, E4M3, E5M2, E5M3};

/// Round an `f32` to the nearest BFloat16 value and return it as `f32`.
///
/// This is the "store to BF16 memory" operation used throughout the paper's
/// GPU-simulated training: arithmetic runs in high precision, results are
/// rounded to the storage grid.
#[inline]
pub fn round_to_bf16(x: f32) -> f32 {
    Bf16::from_f32(x).to_f32()
}
