//! Decimal-accuracy analysis (Figure 4 of the paper).
//!
//! Gustafson defines the *decimal accuracy* of an approximation `x̂` of a
//! value `x` as `-log10(|log10(x̂ / x)|)`: roughly, the number of correct
//! decimal digits. Plotting the decimal accuracy of rounding to a format
//! across its dynamic range visualises the fixed precision of FP8 vs the
//! tapered precision of posits.

/// Decimal accuracy of `approx` as an estimate of `exact`.
///
/// Returns `f64::INFINITY` when the two are equal and `f64::NEG_INFINITY`
/// when the approximation is zero/opposite-signed (no correct digits).
///
/// ```
/// use qt_softfloat::decimal_accuracy;
/// // One part in 10^3 error ≈ 3.36 decimal digits.
/// let da = decimal_accuracy(1.0, 1.001);
/// assert!((da - 3.36).abs() < 0.01);
/// ```
pub fn decimal_accuracy(exact: f64, approx: f64) -> f64 {
    if exact == approx {
        return f64::INFINITY;
    }
    if exact == 0.0 || approx == 0.0 || exact.signum() != approx.signum() {
        return f64::NEG_INFINITY;
    }
    let log_ratio = libm::log10(approx / exact).abs();
    if log_ratio == 0.0 {
        f64::INFINITY
    } else {
        -libm::log10(log_ratio)
    }
}

/// Decimal accuracy of a rounding function at input `x`: rounds `x` with
/// `round` and measures how many decimal digits survive.
pub fn decimal_accuracy_of_rounding(x: f64, round: impl Fn(f64) -> f64) -> f64 {
    decimal_accuracy(x, round(x))
}

/// Sweep decimal accuracy of a rounding function across an exponent range.
///
/// Samples `samples_per_octave` log-spaced points in each binade of
/// `[2^lo_exp, 2^hi_exp)` and returns `(x, min_accuracy_in_neighbourhood)`
/// pairs; the *minimum* over a small neighbourhood reflects worst-case
/// accuracy like the paper's Figure 4 staircase plot.
pub fn accuracy_sweep(
    round: impl Fn(f64) -> f64,
    lo_exp: i32,
    hi_exp: i32,
    samples_per_octave: usize,
) -> Vec<(f64, f64)> {
    let mut out = Vec::new();
    for e in lo_exp..hi_exp {
        for i in 0..samples_per_octave {
            let frac = i as f64 / samples_per_octave as f64;
            let x = libm::exp2(e as f64 + frac);
            // Worst case over a few sub-samples within the step.
            let mut worst = f64::INFINITY;
            for j in 1..8 {
                let xx = x * (1.0 + j as f64 / (8.0 * samples_per_octave as f64));
                let da = decimal_accuracy_of_rounding(xx, &round);
                if da < worst {
                    worst = da;
                }
            }
            out.push((x, worst));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{E4M3, E5M2};

    #[test]
    fn exact_is_infinite() {
        assert_eq!(decimal_accuracy(2.0, 2.0), f64::INFINITY);
    }

    #[test]
    fn sign_flip_is_neg_infinite() {
        assert_eq!(decimal_accuracy(1.0, -1.0), f64::NEG_INFINITY);
        assert_eq!(decimal_accuracy(1.0, 0.0), f64::NEG_INFINITY);
    }

    #[test]
    fn e4m3_beats_e5m2_near_one() {
        // E4M3 has one extra fraction bit, so its worst-case decimal
        // accuracy in the binade [1, 2) is higher than E5M2's.
        let worst = |round: fn(f64) -> f64| {
            (1..200)
                .map(|i| decimal_accuracy_of_rounding(1.0 + i as f64 / 200.0, round))
                .fold(f64::INFINITY, f64::min)
        };
        let da_e4m3 = worst(E4M3::quantize);
        let da_e5m2 = worst(E5M2::quantize);
        assert!(da_e4m3 > da_e5m2, "{da_e4m3} vs {da_e5m2}");
    }

    #[test]
    fn sweep_shape() {
        let pts = accuracy_sweep(E4M3::quantize, -6, 6, 4);
        assert_eq!(pts.len(), 12 * 4);
        // Inside the normal range accuracy is positive and roughly flat.
        for (x, da) in &pts {
            assert!(*da > 0.0, "x={x} da={da}");
        }
    }
}
