//! BFloat16: the 16-bit truncated-`f32` format the paper uses as its
//! high-precision baseline and as the accumulation format of the 8-bit
//! accelerators.

use core::fmt;

/// A BFloat16 value (1 sign, 8 exponent, 7 mantissa bits).
///
/// BF16 shares `f32`'s exponent range, so conversion is a mantissa rounding:
/// round-to-nearest-even on the upper 16 bits of the `f32` encoding.
///
/// # Example
///
/// ```
/// use qt_softfloat::Bf16;
/// let x = Bf16::from_f32(3.14159);
/// assert!((x.to_f32() - 3.14159).abs() < 0.01);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Self = Self(0);
    /// One.
    pub const ONE: Self = Self(0x3f80);
    /// Largest finite value, `(2 - 2^-7) * 2^127`.
    pub const MAX: Self = Self(0x7f7f);
    /// Smallest positive normal value, `2^-126`.
    pub const MIN_POSITIVE: Self = Self(0x0080);

    /// Construct from raw bits.
    #[inline]
    pub const fn from_bits(bits: u16) -> Self {
        Self(bits)
    }

    /// Raw bit pattern.
    #[inline]
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Round an `f32` to the nearest BF16 value (round-to-nearest-even).
    /// NaN inputs map to a quiet NaN; infinities are preserved.
    #[inline]
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if x.is_nan() {
            // Quiet NaN, preserving the sign bit.
            return Self(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the 16th bit.
        let round_bit = 0x8000u32;
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x7fff + lsb);
        let _ = round_bit;
        Self((rounded >> 16) as u16)
    }

    /// Convert to `f32` exactly (BF16 is a prefix of the `f32` encoding).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Convert to `f64` exactly.
    #[inline]
    pub fn to_f64(self) -> f64 {
        self.to_f32() as f64
    }

    /// `true` if the value is NaN.
    #[inline]
    pub fn is_nan(self) -> bool {
        self.to_f32().is_nan()
    }

    /// Quantize `x` onto the BF16 grid and return it as `f32`.
    #[inline]
    pub fn quantize(x: f32) -> f32 {
        Self::from_f32(x).to_f32()
    }
}

impl fmt::Debug for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bf16({})", self.to_f32())
    }
}

impl fmt::Display for Bf16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl PartialOrd for Bf16 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

impl From<f32> for Bf16 {
    fn from(x: f32) -> Self {
        Self::from_f32(x)
    }
}

impl From<Bf16> for f32 {
    fn from(x: Bf16) -> Self {
        x.to_f32()
    }
}

impl core::ops::Add for Bf16 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::from_f32(self.to_f32() + rhs.to_f32())
    }
}

impl core::ops::Sub for Bf16 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::from_f32(self.to_f32() - rhs.to_f32())
    }
}

impl core::ops::Mul for Bf16 {
    type Output = Self;
    fn mul(self, rhs: Self) -> Self {
        Self::from_f32(self.to_f32() * rhs.to_f32())
    }
}

impl core::ops::Div for Bf16 {
    type Output = Self;
    fn div(self, rhs: Self) -> Self {
        Self::from_f32(self.to_f32() / rhs.to_f32())
    }
}

impl core::ops::Neg for Bf16 {
    type Output = Self;
    fn neg(self) -> Self {
        Self(self.0 ^ 0x8000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert_eq!(Bf16::MAX.to_f32(), 3.3895314e38);
        assert_eq!(Bf16::MIN_POSITIVE.to_f32(), 1.1754944e-38);
    }

    #[test]
    fn rne() {
        // 1.0 + 2^-8 is exactly halfway between 1.0 and 1.0 + 2^-7;
        // tie goes to even (1.0).
        let half_ulp = f32::from_bits(0x3f80_8000);
        assert_eq!(Bf16::from_f32(half_ulp).to_f32(), 1.0);
        // Just above the midpoint rounds up.
        let above = f32::from_bits(0x3f80_8001);
        assert_eq!(Bf16::from_f32(above).to_f32(), 1.0 + 1.0 / 128.0);
        // Midpoint above an odd mantissa rounds up to even.
        let odd_mid = f32::from_bits(0x3f81_8000);
        assert_eq!(Bf16::from_f32(odd_mid).to_f32(), 1.0 + 2.0 / 128.0);
    }

    #[test]
    fn specials() {
        assert!(Bf16::from_f32(f32::NAN).is_nan());
        assert_eq!(Bf16::from_f32(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(
            Bf16::from_f32(f32::NEG_INFINITY).to_f32(),
            f32::NEG_INFINITY
        );
        assert_eq!(Bf16::from_f32(-0.0).bits(), 0x8000);
    }

    #[test]
    fn roundtrip_exhaustive() {
        for b in 0u16..=0xffff {
            let v = Bf16::from_bits(b).to_f32();
            if v.is_nan() {
                assert!(Bf16::from_f32(v).is_nan());
            } else {
                assert_eq!(Bf16::from_f32(v).bits(), b, "bits {b:#06x}");
            }
        }
    }
}
