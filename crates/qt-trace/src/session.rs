//! The trace session: hierarchical spans, instant events, and typed
//! aggregation of the telemetry the rest of the workspace produces.
//!
//! A [`TraceSession`] records two kinds of time. *Wall time* is measured
//! with a monotonic clock at span begin/end and belongs to the host that
//! ran the experiment. *Logical cycles* are attributed by the caller —
//! the accelerator simulator knows how many cycles a GEMM takes, the
//! session only book-keeps them — and accumulate up the open-span stack,
//! so a `block` span ends up carrying the simulated cost of every GEMM
//! and vector op recorded inside it. The exporters lay the two out on
//! separate tracks.
//!
//! Everything that feeds the deterministic [`crate::RunManifest`]
//! (per-site quantization health, per-GEMM utilisation, scaler history,
//! metrics) is aggregated in `BTreeMap`s keyed by site name, never by
//! wall time, so two runs with the same seed serialise byte-identically.

use crate::metrics::MetricsRegistry;
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::time::Instant;

/// Shared handle to a session, as threaded through contexts and trainers.
pub type TraceHandle = Rc<RefCell<TraceSession>>;

/// Identifier of an open span, returned by [`TraceSession::begin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanId(usize);

/// Simulated cost of one GEMM, as attributed to a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GemmCost {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Multiply-accumulates performed.
    pub macs: u64,
    /// Cycles in which the array computed (utilisation numerator).
    pub active_cycles: u64,
    /// SRAM bytes moved (reads + writes).
    pub sram_bytes: u64,
}

/// A cost oracle that converts operation shapes into simulated cycles.
///
/// Implemented by the accelerator simulator; consumed by the model-side
/// span emitters. The trait lives here so the model crate and the
/// hardware crate need not depend on each other.
pub trait CycleModel {
    /// Cost of a `[m, k] × [k, n]` GEMM.
    fn gemm_cost(&self, m: u64, k: u64, n: u64) -> GemmCost;
    /// Cycles of a numerically-stable softmax over `rows` rows of
    /// `width` elements.
    fn softmax_cycles(&self, rows: u64, width: u64) -> u64;
}

/// What a [`Record`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A span that is still open (no end seen yet).
    SpanOpen,
    /// A completed span.
    SpanClosed,
    /// A zero-duration point event.
    Instant,
}

/// One event in the session's stream, in begin order.
#[derive(Debug, Clone)]
pub struct Record {
    /// Span or instant.
    pub kind: RecordKind,
    /// Event name (a site like `enc.0.attn`, or `train.step`).
    pub name: String,
    /// Category (`block`, `gemm`, `vector`, `quant`, `train`…).
    pub cat: String,
    /// Index of the enclosing span in the record stream, if any.
    pub parent: Option<usize>,
    /// Nesting depth at begin (root spans are depth 0).
    pub depth: u16,
    /// Wall-clock offset from session start at begin, in nanoseconds.
    pub t_ns: u64,
    /// Wall-clock duration, in nanoseconds (spans only).
    pub wall_dur_ns: u64,
    /// Logical cycles attributed directly to this record.
    pub cycles: u64,
    /// Logical cycles accumulated from closed children.
    pub child_cycles: u64,
    /// Free-form numeric arguments (exported under `args`).
    pub args: Vec<(String, f64)>,
}

impl Record {
    /// Own plus child cycles — the record's full logical extent.
    pub fn total_cycles(&self) -> u64 {
        self.cycles + self.child_cycles
    }
}

/// One quantization event, as emitted by a quantization cut.
#[derive(Debug, Clone, Copy)]
pub struct QuantEvent<'a> {
    /// Cut-site name (e.g. `enc.0.ffn0.gelu.in`).
    pub site: &'a str,
    /// Element format applied at the cut (e.g. `P8E1`).
    pub format: &'a str,
    /// Pre-quantization maximum absolute value.
    pub amax: f32,
    /// Elements examined.
    pub elements: u64,
    /// Elements clamped at the format's range edge.
    pub saturated: u64,
    /// Finite non-zero elements flushed to zero.
    pub underflowed: u64,
    /// Inputs that were already non-finite.
    pub nonfinite_in: u64,
    /// Outputs that left the quantizer non-finite.
    pub nonfinite_out: u64,
}

/// Aggregated quantization health of one cut site.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuantSite {
    /// Quantization events recorded at this site.
    pub events: u64,
    /// Elements examined.
    pub elements: u64,
    /// Elements clamped at the range edge.
    pub saturated: u64,
    /// Elements flushed to zero.
    pub underflowed: u64,
    /// Non-finite inputs.
    pub nonfinite_in: u64,
    /// Non-finite outputs.
    pub nonfinite_out: u64,
    /// Largest pre-quantization amax seen.
    pub amax_max: f32,
    /// Every element format this site was cut to.
    pub formats: BTreeSet<String>,
}

impl QuantSite {
    /// Fraction of elements clamped at the range edge.
    pub fn saturation_rate(&self) -> f64 {
        if self.elements == 0 {
            0.0
        } else {
            self.saturated as f64 / self.elements as f64
        }
    }
}

/// Aggregated simulated-GEMM statistics of one site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GemmSite {
    /// GEMMs recorded at this site.
    pub count: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total multiply-accumulates.
    pub macs: u64,
    /// Total active (computing) cycles.
    pub active_cycles: u64,
    /// Total SRAM bytes moved.
    pub sram_bytes: u64,
}

impl GemmSite {
    /// Array utilisation in `[0, 1]` across every GEMM at this site.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.active_cycles as f64 / self.cycles as f64
        }
    }
}

/// Aggregated vector-unit statistics of one site.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VectorSite {
    /// Vector operations recorded at this site.
    pub count: u64,
    /// Total simulated cycles.
    pub cycles: u64,
    /// Total elements processed.
    pub elements: u64,
}

/// One loss-scaler transition, in emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalerRecord {
    /// Global step index (applied + skipped) at which it happened.
    pub step: u64,
    /// Transition kind (`grow`, `backoff`, `rollback`…).
    pub event: String,
    /// Scale before the transition.
    pub from: f32,
    /// Scale after the transition.
    pub to: f32,
}

/// A recording of one run: the event stream plus the typed aggregates
/// the manifest is built from.
#[derive(Debug)]
pub struct TraceSession {
    name: String,
    started: Instant,
    records: Vec<Record>,
    stack: Vec<usize>,
    metrics: MetricsRegistry,
    quant_sites: BTreeMap<String, QuantSite>,
    gemm_sites: BTreeMap<String, GemmSite>,
    vector_sites: BTreeMap<String, VectorSite>,
    scaler: Vec<ScalerRecord>,
    meta: BTreeMap<String, String>,
}

impl TraceSession {
    /// New session named `name` (typically the binary or test driving
    /// the run).
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            started: Instant::now(),
            records: Vec::new(),
            stack: Vec::new(),
            metrics: MetricsRegistry::new(),
            quant_sites: BTreeMap::new(),
            gemm_sites: BTreeMap::new(),
            vector_sites: BTreeMap::new(),
            scaler: Vec::new(),
            meta: BTreeMap::new(),
        }
    }

    /// Wrap a session in the shared handle producers hold.
    pub fn handle(self) -> TraceHandle {
        Rc::new(RefCell::new(self))
    }

    /// The session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attach a `key = value` annotation (scheme, seed, binary…) for the
    /// manifest.
    pub fn set_meta(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.meta.insert(key.into(), value.into());
    }

    /// All annotations, sorted by key.
    pub fn meta(&self) -> &BTreeMap<String, String> {
        &self.meta
    }

    fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Open a span. Spans nest: every record emitted before the matching
    /// [`TraceSession::end`] becomes a child.
    pub fn begin(&mut self, name: &str, cat: &str) -> SpanId {
        let idx = self.records.len();
        self.records.push(Record {
            kind: RecordKind::SpanOpen,
            name: name.to_string(),
            cat: cat.to_string(),
            parent: self.stack.last().copied(),
            depth: self.stack.len() as u16,
            t_ns: self.now_ns(),
            wall_dur_ns: 0,
            cycles: 0,
            child_cycles: 0,
            args: Vec::new(),
        });
        self.stack.push(idx);
        SpanId(idx)
    }

    /// Close a span. Any children left open are closed first (so a
    /// panicking callee cannot corrupt the stack); closing propagates the
    /// span's logical cycles into its parent.
    pub fn end(&mut self, id: SpanId) {
        let now = self.now_ns();
        while let Some(top) = self.stack.pop() {
            let total = {
                let rec = &mut self.records[top];
                rec.kind = RecordKind::SpanClosed;
                rec.wall_dur_ns = now.saturating_sub(rec.t_ns);
                rec.total_cycles()
            };
            if let Some(parent) = self.records[top].parent {
                self.records[parent].child_cycles += total;
            }
            if top == id.0 {
                break;
            }
        }
    }

    /// Record a completed leaf span with an explicit logical duration and
    /// (near-)zero wall time — how simulated work enters the stream.
    pub fn leaf_cycles(&mut self, name: &str, cat: &str, cycles: u64) {
        let parent = self.stack.last().copied();
        self.records.push(Record {
            kind: RecordKind::SpanClosed,
            name: name.to_string(),
            cat: cat.to_string(),
            parent,
            depth: self.stack.len() as u16,
            t_ns: self.now_ns(),
            wall_dur_ns: 0,
            cycles,
            child_cycles: 0,
            args: Vec::new(),
        });
        if let Some(p) = parent {
            self.records[p].child_cycles += cycles;
        }
    }

    /// Record a zero-duration point event with numeric arguments.
    pub fn instant(&mut self, name: &str, cat: &str, args: Vec<(String, f64)>) {
        self.records.push(Record {
            kind: RecordKind::Instant,
            name: name.to_string(),
            cat: cat.to_string(),
            parent: self.stack.last().copied(),
            depth: self.stack.len() as u16,
            t_ns: self.now_ns(),
            wall_dur_ns: 0,
            cycles: 0,
            child_cycles: 0,
            args,
        });
    }

    /// Record a quantization event: an instant in the stream plus the
    /// per-site aggregate the manifest reports.
    pub fn quant(&mut self, ev: &QuantEvent<'_>) {
        self.instant(
            ev.site,
            "quant",
            vec![
                ("amax".to_string(), ev.amax as f64),
                ("elements".to_string(), ev.elements as f64),
                ("saturated".to_string(), ev.saturated as f64),
                ("underflowed".to_string(), ev.underflowed as f64),
            ],
        );
        let site = self.quant_sites.entry(ev.site.to_string()).or_default();
        site.events += 1;
        site.elements += ev.elements;
        site.saturated += ev.saturated;
        site.underflowed += ev.underflowed;
        site.nonfinite_in += ev.nonfinite_in;
        site.nonfinite_out += ev.nonfinite_out;
        if ev.amax.is_finite() {
            site.amax_max = site.amax_max.max(ev.amax);
        }
        if !site.formats.contains(ev.format) {
            site.formats.insert(ev.format.to_string());
        }
    }

    /// Record one simulated GEMM: a leaf span whose duration is the
    /// simulated cycle count, plus the per-site utilisation aggregate.
    pub fn gemm(&mut self, name: &str, dims: [u64; 3], cost: GemmCost) {
        let parent = self.stack.last().copied();
        self.records.push(Record {
            kind: RecordKind::SpanClosed,
            name: name.to_string(),
            cat: "gemm".to_string(),
            parent,
            depth: self.stack.len() as u16,
            t_ns: self.now_ns(),
            wall_dur_ns: 0,
            cycles: cost.cycles,
            child_cycles: 0,
            args: vec![
                ("m".to_string(), dims[0] as f64),
                ("k".to_string(), dims[1] as f64),
                ("n".to_string(), dims[2] as f64),
                ("macs".to_string(), cost.macs as f64),
            ],
        });
        if let Some(p) = parent {
            self.records[p].child_cycles += cost.cycles;
        }
        let site = self.gemm_sites.entry(name.to_string()).or_default();
        site.count += 1;
        site.cycles += cost.cycles;
        site.macs += cost.macs;
        site.active_cycles += cost.active_cycles;
        site.sram_bytes += cost.sram_bytes;
    }

    /// Record one simulated vector-unit operation as a leaf span.
    pub fn vector(&mut self, name: &str, cycles: u64, elements: u64) {
        self.leaf_cycles(name, "vector", cycles);
        let site = self.vector_sites.entry(name.to_string()).or_default();
        site.count += 1;
        site.cycles += cycles;
        site.elements += elements;
    }

    /// Record a loss-scaler transition.
    pub fn scaler_event(&mut self, step: u64, event: &str, from: f32, to: f32) {
        self.instant(
            event,
            "scaler",
            vec![
                ("step".to_string(), step as f64),
                ("from".to_string(), from as f64),
                ("to".to_string(), to as f64),
            ],
        );
        self.scaler.push(ScalerRecord {
            step,
            event: event.to_string(),
            from,
            to,
        });
    }

    /// The event stream, in begin order.
    pub fn records(&self) -> &[Record] {
        &self.records
    }

    /// Mutable access to the metrics registry.
    pub fn metrics_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.metrics
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Aggregated quantization health, by site name.
    pub fn quant_sites(&self) -> &BTreeMap<String, QuantSite> {
        &self.quant_sites
    }

    /// Aggregated simulated-GEMM statistics, by site name.
    pub fn gemm_sites(&self) -> &BTreeMap<String, GemmSite> {
        &self.gemm_sites
    }

    /// Aggregated vector-unit statistics, by site name.
    pub fn vector_sites(&self) -> &BTreeMap<String, VectorSite> {
        &self.vector_sites
    }

    /// Loss-scaler history, in emission order.
    pub fn scaler_history(&self) -> &[ScalerRecord] {
        &self.scaler
    }

    /// Number of spans still open.
    pub fn open_spans(&self) -> usize {
        self.stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_accumulate_cycles() {
        let mut s = TraceSession::new("t");
        let outer = s.begin("block", "block");
        let inner = s.begin("attn", "attn");
        s.leaf_cycles("gemm0", "gemm", 100);
        s.leaf_cycles("gemm1", "gemm", 50);
        s.end(inner);
        s.leaf_cycles("gemm2", "gemm", 25);
        s.end(outer);
        let r = s.records();
        assert_eq!(r.len(), 5);
        assert_eq!(r[0].depth, 0);
        assert_eq!(r[1].depth, 1);
        assert_eq!(r[2].depth, 2);
        assert_eq!(r[2].parent, Some(1));
        assert_eq!(r[1].total_cycles(), 150);
        assert_eq!(r[0].total_cycles(), 175);
        assert_eq!(s.open_spans(), 0);
    }

    #[test]
    fn end_closes_abandoned_children() {
        let mut s = TraceSession::new("t");
        let outer = s.begin("outer", "block");
        let _leaked = s.begin("leaked", "block");
        s.end(outer); // closes both
        assert_eq!(s.open_spans(), 0);
        assert!(s
            .records()
            .iter()
            .all(|r| r.kind == RecordKind::SpanClosed));
    }

    #[test]
    fn quant_events_aggregate_per_site() {
        let mut s = TraceSession::new("t");
        let ev = QuantEvent {
            site: "enc.0.q.in",
            format: "P8E1",
            amax: 2.0,
            elements: 100,
            saturated: 3,
            underflowed: 1,
            nonfinite_in: 0,
            nonfinite_out: 0,
        };
        s.quant(&ev);
        s.quant(&QuantEvent {
            amax: 5.0,
            format: "E4M3",
            ..ev
        });
        let site = &s.quant_sites()["enc.0.q.in"];
        assert_eq!(site.events, 2);
        assert_eq!(site.elements, 200);
        assert_eq!(site.saturated, 6);
        assert_eq!(site.amax_max, 5.0);
        assert_eq!(site.formats.len(), 2);
        assert!((site.saturation_rate() - 0.03).abs() < 1e-12);
    }

    #[test]
    fn gemm_aggregates_utilization() {
        let mut s = TraceSession::new("t");
        let cost = GemmCost {
            cycles: 200,
            macs: 1000,
            active_cycles: 150,
            sram_bytes: 4096,
        };
        s.gemm("enc.0.q", [16, 8, 8], cost);
        s.gemm("enc.0.q", [16, 8, 8], cost);
        let site = &s.gemm_sites()["enc.0.q"];
        assert_eq!(site.count, 2);
        assert_eq!(site.cycles, 400);
        assert_eq!(site.utilization(), 0.75);
    }

    #[test]
    fn scaler_history_in_order() {
        let mut s = TraceSession::new("t");
        s.scaler_event(3, "backoff", 1024.0, 512.0);
        s.scaler_event(10, "grow", 512.0, 1024.0);
        let h = s.scaler_history();
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].event, "backoff");
        assert_eq!(h[1].step, 10);
    }
}
