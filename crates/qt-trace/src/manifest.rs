//! The deterministic end-of-run manifest.
//!
//! A manifest is the machine-diffable record of *what a run computed*,
//! stripped of everything host-dependent: scheme and seed annotations,
//! per-site quantization health, per-GEMM utilisation, vector-unit
//! totals, loss-scaler history, and the metrics registry. Wall-clock
//! times never enter it, every map is a `BTreeMap`, and the vendored
//! JSON writer sorts object keys — so two runs with the same seed
//! serialise byte-identically and `diff run_a.json run_b.json` is a
//! meaningful regression check across PRs.
//!
//! The one deliberately host-dependent field is the `host` section
//! (effective `qt-par` pool size and the raw `QT_THREADS` setting),
//! recorded so a manifest says how the run was executed. Because every
//! kernel is bitwise-deterministic for any thread count, stripping that
//! section — [`RunManifest::value_deterministic`] /
//! [`RunManifest::render_deterministic`] — must yield identical bytes
//! across thread counts; the test suite enforces exactly that.

use crate::session::TraceSession;
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Manifest schema version, bumped on any breaking field change.
/// Version 2 added the `host` section.
pub const MANIFEST_VERSION: u64 = 2;

/// Builder of the deterministic end-of-run manifest.
#[derive(Debug, Clone, Copy)]
pub struct RunManifest;

impl RunManifest {
    /// Assemble the manifest as a JSON value, including the `host`
    /// section.
    pub fn value(session: &TraceSession) -> Value {
        Self::assemble(session, true)
    }

    /// Assemble the manifest without the host-dependent `host` section:
    /// the bytes that must match across thread counts (and machines) for
    /// a given seed.
    pub fn value_deterministic(session: &TraceSession) -> Value {
        Self::assemble(session, false)
    }

    fn assemble(session: &TraceSession, with_host: bool) -> Value {
        let mut meta = BTreeMap::new();
        for (k, v) in session.meta() {
            meta.insert(k.clone(), Value::String(v.clone()));
        }

        let spans = session
            .records()
            .iter()
            .filter(|r| !matches!(r.kind, crate::session::RecordKind::Instant))
            .count();
        let instants = session.records().len() - spans;

        let mut quant = BTreeMap::new();
        for (site, q) in session.quant_sites() {
            let formats: Vec<Value> = q.formats.iter().map(|f| Value::String(f.clone())).collect();
            quant.insert(
                site.clone(),
                json!({
                    "events": q.events,
                    "elements": q.elements,
                    "saturated": q.saturated,
                    "underflowed": q.underflowed,
                    "nonfinite_in": q.nonfinite_in,
                    "nonfinite_out": q.nonfinite_out,
                    "amax_max": q.amax_max as f64,
                    "formats": Value::Array(formats),
                }),
            );
        }

        let mut gemm = BTreeMap::new();
        for (site, g) in session.gemm_sites() {
            gemm.insert(
                site.clone(),
                json!({
                    "count": g.count,
                    "cycles": g.cycles,
                    "macs": g.macs,
                    "active_cycles": g.active_cycles,
                    "sram_bytes": g.sram_bytes,
                    "utilization": g.utilization(),
                }),
            );
        }

        let mut vector = BTreeMap::new();
        for (site, v) in session.vector_sites() {
            vector.insert(
                site.clone(),
                json!({
                    "count": v.count,
                    "cycles": v.cycles,
                    "elements": v.elements,
                }),
            );
        }

        let scaler: Vec<Value> = session
            .scaler_history()
            .iter()
            .map(|s| {
                json!({
                    "step": s.step,
                    "event": s.event.clone(),
                    "from": s.from as f64,
                    "to": s.to as f64,
                })
            })
            .collect();

        let m = session.metrics();
        let mut counters = BTreeMap::new();
        for (k, v) in m.counters() {
            counters.insert(k.clone(), Value::from(*v));
        }
        let mut gauges = BTreeMap::new();
        for (k, v) in m.gauges() {
            gauges.insert(k.clone(), Value::from(*v));
        }
        let mut hists = BTreeMap::new();
        for (k, h) in m.hists() {
            hists.insert(
                k.clone(),
                json!({
                    "buckets": Value::from(h.buckets.clone()),
                    "zeros": h.zeros,
                    "nonfinite": h.nonfinite,
                }),
            );
        }

        let mut top = BTreeMap::new();
        top.insert("version".into(), Value::from(MANIFEST_VERSION));
        top.insert("name".into(), Value::String(session.name().to_string()));
        top.insert("meta".into(), Value::Object(meta));
        top.insert(
            "counts".into(),
            json!({"spans": spans, "instants": instants}),
        );
        top.insert("quant_sites".into(), Value::Object(quant));
        top.insert("gemm_sites".into(), Value::Object(gemm));
        top.insert("vector_sites".into(), Value::Object(vector));
        top.insert("scaler".into(), Value::Array(scaler));
        top.insert(
            "metrics".into(),
            json!({
                "counters": Value::Object(counters),
                "gauges": Value::Object(gauges),
                "hists": Value::Object(hists),
            }),
        );
        if with_host {
            top.insert(
                "host".into(),
                json!({
                    "threads": qt_par::threads() as u64,
                    "qt_threads": match qt_par::qt_threads_env() {
                        Some(s) => Value::String(s),
                        None => Value::Null,
                    },
                }),
            );
        }
        Value::Object(top)
    }

    /// Serialize the manifest, pretty-printed with a trailing newline —
    /// the exact bytes `--manifest-out` writes.
    pub fn render(session: &TraceSession) -> String {
        let mut s =
            serde_json::to_string_pretty(&Self::value(session)).expect("serializable");
        s.push('\n');
        s
    }

    /// [`RunManifest::render`] without the `host` section — byte-identical
    /// across thread counts for the same seeded run.
    pub fn render_deterministic(session: &TraceSession) -> String {
        let mut s = serde_json::to_string_pretty(&Self::value_deterministic(session))
            .expect("serializable");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{GemmCost, QuantEvent};

    fn run(label: &str) -> TraceSession {
        let mut s = TraceSession::new("m");
        s.set_meta("scheme", label);
        let sp = s.begin("enc.0", "block");
        s.gemm(
            "enc.0.q",
            [4, 4, 4],
            GemmCost {
                cycles: 64,
                macs: 64,
                active_cycles: 32,
                sram_bytes: 128,
            },
        );
        s.quant(&QuantEvent {
            site: "enc.0.q.in",
            format: "P8E1",
            amax: 1.5,
            elements: 16,
            saturated: 1,
            underflowed: 0,
            nonfinite_in: 0,
            nonfinite_out: 0,
        });
        s.end(sp);
        s.scaler_event(1, "backoff", 1024.0, 512.0);
        s.metrics_mut().counter_add("steps", &[], 7);
        s
    }

    #[test]
    fn manifest_contains_all_sections() {
        let v = RunManifest::value(&run("posit8"));
        assert_eq!(v["version"].as_u64(), Some(MANIFEST_VERSION));
        assert_eq!(v["meta"]["scheme"], "posit8");
        assert_eq!(v["counts"]["spans"].as_u64(), Some(2));
        assert_eq!(v["quant_sites"]["enc.0.q.in"]["saturated"].as_u64(), Some(1));
        assert_eq!(v["gemm_sites"]["enc.0.q"]["utilization"].as_f64(), Some(0.5));
        assert_eq!(v["scaler"][0]["event"], "backoff");
        assert_eq!(v["metrics"]["counters"]["steps"].as_u64(), Some(7));
    }

    #[test]
    fn identical_runs_render_identically() {
        // Wall time differs between the two sessions; the manifest must not.
        let a = RunManifest::render(&run("posit8"));
        let b = RunManifest::render(&run("posit8"));
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn manifest_roundtrips_through_parser() {
        let s = RunManifest::render(&run("fp8"));
        let v = serde_json::from_str(&s).unwrap();
        assert_eq!(v["name"], "m");
    }

    #[test]
    fn host_section_records_pool_and_is_stripped_deterministically() {
        let s = run("posit8");
        let v = RunManifest::value(&s);
        assert_eq!(
            v["host"]["threads"].as_u64(),
            Some(qt_par::threads() as u64)
        );
        let d = RunManifest::value_deterministic(&s);
        assert!(
            matches!(d["host"], Value::Null),
            "deterministic view must omit host"
        );
        // Stripping host is the only difference between the two renders.
        let det = RunManifest::render_deterministic(&s);
        assert!(!det.contains("\"host\""));
        assert!(RunManifest::render(&s).contains("\"host\""));
        // And the deterministic bytes do not depend on the pool size.
        let a = qt_par::with_threads(1, || RunManifest::render_deterministic(&run("posit8")));
        let b = qt_par::with_threads(3, || RunManifest::render_deterministic(&run("posit8")));
        assert_eq!(a, b);
        assert_eq!(a, det);
    }
}
