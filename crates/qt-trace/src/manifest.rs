//! The deterministic end-of-run manifest.
//!
//! A manifest is the machine-diffable record of *what a run computed*,
//! stripped of everything host-dependent: scheme and seed annotations,
//! per-site quantization health, per-GEMM utilisation, vector-unit
//! totals, loss-scaler history, and the metrics registry. Wall-clock
//! times never enter it, every map is a `BTreeMap`, and the vendored
//! JSON writer sorts object keys — so two runs with the same seed
//! serialise byte-identically and `diff run_a.json run_b.json` is a
//! meaningful regression check across PRs.

use crate::session::TraceSession;
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Manifest schema version, bumped on any breaking field change.
pub const MANIFEST_VERSION: u64 = 1;

/// Builder of the deterministic end-of-run manifest.
#[derive(Debug, Clone, Copy)]
pub struct RunManifest;

impl RunManifest {
    /// Assemble the manifest as a JSON value.
    pub fn value(session: &TraceSession) -> Value {
        let mut meta = BTreeMap::new();
        for (k, v) in session.meta() {
            meta.insert(k.clone(), Value::String(v.clone()));
        }

        let spans = session
            .records()
            .iter()
            .filter(|r| !matches!(r.kind, crate::session::RecordKind::Instant))
            .count();
        let instants = session.records().len() - spans;

        let mut quant = BTreeMap::new();
        for (site, q) in session.quant_sites() {
            let formats: Vec<Value> = q.formats.iter().map(|f| Value::String(f.clone())).collect();
            quant.insert(
                site.clone(),
                json!({
                    "events": q.events,
                    "elements": q.elements,
                    "saturated": q.saturated,
                    "underflowed": q.underflowed,
                    "nonfinite_in": q.nonfinite_in,
                    "nonfinite_out": q.nonfinite_out,
                    "amax_max": q.amax_max as f64,
                    "formats": Value::Array(formats),
                }),
            );
        }

        let mut gemm = BTreeMap::new();
        for (site, g) in session.gemm_sites() {
            gemm.insert(
                site.clone(),
                json!({
                    "count": g.count,
                    "cycles": g.cycles,
                    "macs": g.macs,
                    "active_cycles": g.active_cycles,
                    "sram_bytes": g.sram_bytes,
                    "utilization": g.utilization(),
                }),
            );
        }

        let mut vector = BTreeMap::new();
        for (site, v) in session.vector_sites() {
            vector.insert(
                site.clone(),
                json!({
                    "count": v.count,
                    "cycles": v.cycles,
                    "elements": v.elements,
                }),
            );
        }

        let scaler: Vec<Value> = session
            .scaler_history()
            .iter()
            .map(|s| {
                json!({
                    "step": s.step,
                    "event": s.event.clone(),
                    "from": s.from as f64,
                    "to": s.to as f64,
                })
            })
            .collect();

        let m = session.metrics();
        let mut counters = BTreeMap::new();
        for (k, v) in m.counters() {
            counters.insert(k.clone(), Value::from(*v));
        }
        let mut gauges = BTreeMap::new();
        for (k, v) in m.gauges() {
            gauges.insert(k.clone(), Value::from(*v));
        }
        let mut hists = BTreeMap::new();
        for (k, h) in m.hists() {
            hists.insert(
                k.clone(),
                json!({
                    "buckets": Value::from(h.buckets.clone()),
                    "zeros": h.zeros,
                    "nonfinite": h.nonfinite,
                }),
            );
        }

        json!({
            "version": MANIFEST_VERSION,
            "name": session.name(),
            "meta": Value::Object(meta),
            "counts": json!({"spans": spans, "instants": instants}),
            "quant_sites": Value::Object(quant),
            "gemm_sites": Value::Object(gemm),
            "vector_sites": Value::Object(vector),
            "scaler": Value::Array(scaler),
            "metrics": json!({
                "counters": Value::Object(counters),
                "gauges": Value::Object(gauges),
                "hists": Value::Object(hists),
            }),
        })
    }

    /// Serialize the manifest, pretty-printed with a trailing newline —
    /// the exact bytes `--manifest-out` writes.
    pub fn render(session: &TraceSession) -> String {
        let mut s =
            serde_json::to_string_pretty(&Self::value(session)).expect("serializable");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{GemmCost, QuantEvent};

    fn run(label: &str) -> TraceSession {
        let mut s = TraceSession::new("m");
        s.set_meta("scheme", label);
        let sp = s.begin("enc.0", "block");
        s.gemm(
            "enc.0.q",
            [4, 4, 4],
            GemmCost {
                cycles: 64,
                macs: 64,
                active_cycles: 32,
                sram_bytes: 128,
            },
        );
        s.quant(&QuantEvent {
            site: "enc.0.q.in",
            format: "P8E1",
            amax: 1.5,
            elements: 16,
            saturated: 1,
            underflowed: 0,
            nonfinite_in: 0,
            nonfinite_out: 0,
        });
        s.end(sp);
        s.scaler_event(1, "backoff", 1024.0, 512.0);
        s.metrics_mut().counter_add("steps", &[], 7);
        s
    }

    #[test]
    fn manifest_contains_all_sections() {
        let v = RunManifest::value(&run("posit8"));
        assert_eq!(v["version"].as_u64(), Some(MANIFEST_VERSION));
        assert_eq!(v["meta"]["scheme"], "posit8");
        assert_eq!(v["counts"]["spans"].as_u64(), Some(2));
        assert_eq!(v["quant_sites"]["enc.0.q.in"]["saturated"].as_u64(), Some(1));
        assert_eq!(v["gemm_sites"]["enc.0.q"]["utilization"].as_f64(), Some(0.5));
        assert_eq!(v["scaler"][0]["event"], "backoff");
        assert_eq!(v["metrics"]["counters"]["steps"].as_u64(), Some(7));
    }

    #[test]
    fn identical_runs_render_identically() {
        // Wall time differs between the two sessions; the manifest must not.
        let a = RunManifest::render(&run("posit8"));
        let b = RunManifest::render(&run("posit8"));
        assert_eq!(a, b);
        assert!(a.ends_with('\n'));
    }

    #[test]
    fn manifest_roundtrips_through_parser() {
        let s = RunManifest::render(&run("fp8"));
        let v = serde_json::from_str(&s).unwrap();
        assert_eq!(v["name"], "m");
    }
}
