//! Observability layer for the quantized-transformers workspace: the
//! telemetry that every other crate produces but none could record.
//!
//! Three telemetry islands exist in the stack — per-cut numerical health
//! in the quantization context, cycle/SRAM counters in the accelerator
//! simulator, and loss-scaler/rollback events in the trainer. This crate
//! gives them one destination:
//!
//! - [`TraceSession`]: hierarchical spans with wall-time *and*
//!   logical-cycle attribution, plus typed aggregation of quantization
//!   events, simulated GEMMs/vector ops, and loss-scaler transitions;
//! - [`MetricsRegistry`]: labelled counters, gauges and log2-magnitude
//!   histograms (the same binade buckets as
//!   [`qt_tensor::TensorStats::log2_hist`]);
//! - exporters ([`export`]): a JSONL event stream, the Chrome
//!   `trace_event` format (loadable in `chrome://tracing` or Perfetto),
//!   a top-K text summary ([`trace_report`]), and a deterministic
//!   end-of-run [`RunManifest`].
//!
//! The non-traced hot path stays free: producers hold an
//! `Option<`[`TraceHandle`]`>` and emit nothing — no event, no
//! allocation — when it is `None`. Attaching a session is an explicit,
//! per-run opt-in (`--trace-out` in the experiment binaries).
//!
//! Cycle attribution crosses crates through the [`CycleModel`] trait:
//! the hardware simulator implements it, the model-side span emitters
//! consume it, and neither crate needs to depend on the other.

#![warn(missing_docs)]

pub mod export;
pub mod manifest;
pub mod metrics;
pub mod session;

pub use export::{chrome_trace, jsonl, trace_report};
pub use manifest::{RunManifest, MANIFEST_VERSION};
pub use metrics::{LogHist, MetricsRegistry};
pub use session::{
    CycleModel, GemmCost, GemmSite, QuantEvent, QuantSite, Record, RecordKind, ScalerRecord,
    SpanId, TraceHandle, TraceSession, VectorSite,
};
