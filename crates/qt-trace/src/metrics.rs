//! A typed metrics registry: labelled counters, gauges and log2-magnitude
//! histograms.
//!
//! Metrics complement spans: a span answers *where the time went*, a
//! metric answers *how much of something happened*. The histogram buckets
//! are the same binade buckets as [`TensorStats::log2_hist`] — one bucket
//! per `floor(log2(|x|))` in `[-32, 31]` — so a probe record, a gradient
//! distribution, or a stream of scalar observations all land on the same
//! axis as the paper's distribution figures.

use qt_tensor::TensorStats;
use std::collections::BTreeMap;

/// A log2-magnitude histogram with the same bucket layout as
/// [`TensorStats::log2_hist`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHist {
    /// Counts per binade, bucket `i` covering
    /// `floor(log2(|x|)) == i + TensorStats::LOG2_LO`.
    pub buckets: Vec<u64>,
    /// Exactly-zero observations (no binade).
    pub zeros: u64,
    /// Non-finite observations (no binade).
    pub nonfinite: u64,
}

impl Default for LogHist {
    fn default() -> Self {
        Self {
            buckets: vec![0; TensorStats::BUCKETS],
            zeros: 0,
            nonfinite: 0,
        }
    }
}

impl LogHist {
    /// Record one scalar observation.
    pub fn observe(&mut self, x: f32) {
        if x == 0.0 {
            self.zeros += 1;
        } else if !x.is_finite() {
            self.nonfinite += 1;
        } else {
            let b = libm::floorf(libm::log2f(x.abs())) as i32;
            let i = (b - TensorStats::LOG2_LO).clamp(0, TensorStats::BUCKETS as i32 - 1) as usize;
            self.buckets[i] += 1;
        }
    }

    /// Fold pre-computed binade counts (e.g. a
    /// [`TensorStats::log2_hist`]) into this histogram, bucket-wise.
    pub fn merge_counts(&mut self, counts: &[u64]) {
        for (b, &c) in self.buckets.iter_mut().zip(counts) {
            *b += c;
        }
    }

    /// Total observations that landed in a binade bucket.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Approximate `q`-quantile (`q` in `[0, 1]`) of the observed
    /// magnitudes, to binade resolution.
    ///
    /// Observations are ordered zeros → binade buckets (ascending) →
    /// non-finite, and each binade answers with its *upper* edge
    /// `2^(b+1)` — a conservative bound, which is the right direction for
    /// latency percentiles (a reported p99 is never below the true one).
    /// Returns `None` when nothing has been observed. Non-finite
    /// observations answer `f64::INFINITY`.
    ///
    /// The edges are pinned rather than emergent: `q <= 0` answers the
    /// minimum (0.0 when any zero was seen, else the *lower* edge `2^b`
    /// of the first occupied binade — the tightest lower bound the
    /// buckets can state — else `INFINITY` for a purely non-finite
    /// histogram), and `q >= 1` answers the maximum (`INFINITY` when
    /// any non-finite was seen, else the upper edge of the last
    /// occupied binade, else 0.0 for a purely-zeros histogram). `q` is
    /// clamped to `[0, 1]`; NaN `q` is treated as 0.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.zeros + self.count() + self.nonfinite;
        if total == 0 {
            return None;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        if q <= 0.0 {
            // Minimum: the smallest observation class present.
            if self.zeros > 0 {
                return Some(0.0);
            }
            if let Some(i) = self.buckets.iter().position(|&c| c > 0) {
                let lower = i as i32 + TensorStats::LOG2_LO;
                return Some(libm::exp2(lower as f64));
            }
            return Some(f64::INFINITY);
        }
        if q >= 1.0 {
            // Maximum: the largest observation class present.
            if self.nonfinite > 0 {
                return Some(f64::INFINITY);
            }
            if let Some(i) = self.buckets.iter().rposition(|&c| c > 0) {
                let upper = i as i32 + TensorStats::LOG2_LO + 1;
                return Some(libm::exp2(upper as f64));
            }
            return Some(0.0);
        }
        // 1-based rank of the order statistic the quantile asks for.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = self.zeros;
        if rank <= seen {
            return Some(0.0);
        }
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if rank <= seen {
                let upper = i as i32 + TensorStats::LOG2_LO + 1;
                return Some(libm::exp2(upper as f64));
            }
        }
        Some(f64::INFINITY)
    }
}

/// Registry of named, labelled metrics.
///
/// A metric is addressed by a name plus an optional label set; labels are
/// folded into a canonical key (`name{k=v,…}`, labels sorted by key) so
/// iteration order — and therefore every export — is deterministic.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, LogHist>,
}

/// Canonical `name{k=v,…}` key for a metric with labels.
fn key(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut sorted: Vec<_> = labels.to_vec();
    sorted.sort();
    let body: Vec<String> = sorted.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", body.join(","))
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a monotonic counter (created at zero on first use).
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        *self.counters.entry(key(name, labels)).or_insert(0) += delta;
    }

    /// Set a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.gauges.insert(key(name, labels), value);
    }

    /// Record one scalar into a log2 histogram (created empty on first
    /// use).
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], x: f32) {
        self.hists.entry(key(name, labels)).or_default().observe(x);
    }

    /// Fold a pre-computed binade histogram (e.g. from a probe's
    /// [`TensorStats`]) into a log2 histogram metric.
    pub fn merge_hist(&mut self, name: &str, labels: &[(&str, &str)], counts: &[u64]) {
        self.hists
            .entry(key(name, labels))
            .or_default()
            .merge_counts(counts);
    }

    /// Current value of a counter (zero if never touched).
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        self.counters.get(&key(name, labels)).copied().unwrap_or(0)
    }

    /// Latest value of a gauge.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.gauges.get(&key(name, labels)).copied()
    }

    /// A histogram by name + labels.
    pub fn hist(&self, name: &str, labels: &[(&str, &str)]) -> Option<&LogHist> {
        self.hists.get(&key(name, labels))
    }

    /// All counters in canonical-key order.
    pub fn counters(&self) -> impl Iterator<Item = (&String, &u64)> {
        self.counters.iter()
    }

    /// All gauges in canonical-key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&String, &f64)> {
        self.gauges.iter()
    }

    /// All histograms in canonical-key order.
    pub fn hists(&self) -> impl Iterator<Item = (&String, &LogHist)> {
        self.hists.iter()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_tensor::Tensor;

    #[test]
    fn counters_and_gauges() {
        let mut m = MetricsRegistry::new();
        m.counter_add("steps", &[], 1);
        m.counter_add("steps", &[], 2);
        m.gauge_set("loss", &[("task", "sst2")], 0.5);
        m.gauge_set("loss", &[("task", "sst2")], 0.25);
        assert_eq!(m.counter_value("steps", &[]), 3);
        assert_eq!(m.gauge_value("loss", &[("task", "sst2")]), Some(0.25));
        assert_eq!(m.gauge_value("loss", &[]), None);
    }

    #[test]
    fn label_order_is_canonical() {
        let mut m = MetricsRegistry::new();
        m.counter_add("c", &[("b", "2"), ("a", "1")], 1);
        m.counter_add("c", &[("a", "1"), ("b", "2")], 1);
        assert_eq!(m.counter_value("c", &[("b", "2"), ("a", "1")]), 2);
        let keys: Vec<_> = m.counters().map(|(k, _)| k.clone()).collect();
        assert_eq!(keys, vec!["c{a=1,b=2}".to_string()]);
    }

    #[test]
    fn histogram_buckets_match_tensor_stats() {
        let t = Tensor::from_vec(vec![0.5, 1.0, 1.9, 4.0, -4.0], &[5]);
        let stats = TensorStats::of(&t);
        let mut m = MetricsRegistry::new();
        for &x in t.data() {
            m.observe("dist", &[], x);
        }
        let h = m.hist("dist", &[]).unwrap();
        assert_eq!(h.buckets, stats.log2_hist);
        // merging the pre-computed histogram doubles every bucket
        m.merge_hist("dist", &[], &stats.log2_hist);
        assert_eq!(m.hist("dist", &[]).unwrap().count(), 10);
    }

    #[test]
    fn quantiles_walk_zeros_buckets_then_nonfinite() {
        let mut h = LogHist::default();
        assert_eq!(h.quantile(0.5), None);
        // 2 zeros, 6 observations in binade [2,4), 2 in [8,16).
        for _ in 0..2 {
            h.observe(0.0);
        }
        for _ in 0..6 {
            h.observe(3.0);
        }
        for _ in 0..2 {
            h.observe(9.0);
        }
        assert_eq!(h.quantile(0.0), Some(0.0)); // rank 1 = a zero
        assert_eq!(h.quantile(0.5), Some(4.0)); // upper edge of [2,4)
        assert_eq!(h.quantile(0.99), Some(16.0)); // upper edge of [8,16)
        assert_eq!(h.quantile(1.0), Some(16.0));
        h.observe(f32::INFINITY);
        assert_eq!(h.quantile(1.0), Some(f64::INFINITY));
    }

    #[test]
    fn quantile_edges_are_pinned() {
        // Empty histogram: every q answers None.
        let h = LogHist::default();
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(1.0), None);

        // Single bucket, no zeros: q=0 answers the lower edge, q=1 the
        // upper edge of that one binade.
        let mut h = LogHist::default();
        h.observe(3.0); // binade [2, 4)
        assert_eq!(h.quantile(0.0), Some(2.0));
        assert_eq!(h.quantile(0.5), Some(4.0));
        assert_eq!(h.quantile(1.0), Some(4.0));

        // Zeros shift the minimum to 0.0 without moving the maximum.
        h.observe(0.0);
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(4.0));

        // Purely-zeros histogram: both edges are 0.0.
        let mut z = LogHist::default();
        z.observe(0.0);
        assert_eq!(z.quantile(0.0), Some(0.0));
        assert_eq!(z.quantile(1.0), Some(0.0));

        // Purely non-finite histogram: both edges are +inf.
        let mut n = LogHist::default();
        n.observe(f32::NAN);
        assert_eq!(n.quantile(0.0), Some(f64::INFINITY));
        assert_eq!(n.quantile(1.0), Some(f64::INFINITY));

        // Out-of-range and NaN q clamp instead of misbehaving.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
        assert_eq!(h.quantile(f64::NAN), h.quantile(0.0));
    }

    #[test]
    fn histogram_counts_zeros_and_nonfinite() {
        let mut h = LogHist::default();
        h.observe(0.0);
        h.observe(f32::NAN);
        h.observe(f32::INFINITY);
        h.observe(2.0);
        assert_eq!(h.zeros, 1);
        assert_eq!(h.nonfinite, 2);
        assert_eq!(h.count(), 1);
    }
}
