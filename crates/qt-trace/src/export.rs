//! Exporters: JSONL event stream, Chrome `trace_event` JSON, and the
//! top-K text summary.
//!
//! The Chrome export writes two tracks. Track `wall` carries every span
//! at its measured wall-clock position (µs). Track `sim-cycles` lays the
//! same hierarchy out in *logical* time — one microsecond per simulated
//! cycle — with children packed left-to-right inside their parent, so
//! Perfetto renders the accelerator's cost model as if it were a
//! profile: a `block` span exactly as wide as the GEMM and vector spans
//! it contains.

use crate::session::{RecordKind, TraceSession};
use serde_json::{json, Value};
use std::collections::BTreeMap;

/// Serialize the event stream as JSON Lines: one event object per line,
/// in begin order.
///
/// Every line carries `seq`, `type` (`span` / `instant`), `name`, `cat`,
/// `depth`, `t_ns`, and for spans `wall_dur_ns`, `cycles` and
/// `cycles_total`; numeric arguments appear under `args`.
pub fn jsonl(session: &TraceSession) -> String {
    let mut out = String::new();
    for (seq, r) in session.records().iter().enumerate() {
        let mut args = BTreeMap::new();
        for (k, v) in &r.args {
            args.insert(k.clone(), Value::Number(*v));
        }
        let v = match r.kind {
            RecordKind::Instant => json!({
                "seq": seq,
                "type": "instant",
                "name": r.name.clone(),
                "cat": r.cat.clone(),
                "depth": r.depth,
                "t_ns": r.t_ns,
                "args": Value::Object(args),
            }),
            _ => json!({
                "seq": seq,
                "type": "span",
                "name": r.name.clone(),
                "cat": r.cat.clone(),
                "depth": r.depth,
                "t_ns": r.t_ns,
                "wall_dur_ns": r.wall_dur_ns,
                "cycles": r.cycles,
                "cycles_total": r.total_cycles(),
                "args": Value::Object(args),
            }),
        };
        out.push_str(&serde_json::to_string(&v).expect("serializable"));
        out.push('\n');
    }
    out
}

/// Thread id of the wall-clock track in the Chrome export.
const TID_WALL: u64 = 1;
/// Thread id of the logical-cycle track in the Chrome export.
const TID_CYCLES: u64 = 2;

fn args_object(r: &crate::session::Record) -> Value {
    let mut args = BTreeMap::new();
    for (k, v) in &r.args {
        args.insert(k.clone(), Value::Number(*v));
    }
    if r.total_cycles() > 0 {
        args.insert("cycles".to_string(), Value::Number(r.total_cycles() as f64));
    }
    Value::Object(args)
}

/// Serialize the session in Chrome `trace_event` JSON (object form),
/// loadable in `chrome://tracing` or <https://ui.perfetto.dev>.
pub fn chrome_trace(session: &TraceSession) -> String {
    let mut events: Vec<Value> = Vec::new();
    for (tid, label) in [(TID_WALL, "wall"), (TID_CYCLES, "sim-cycles")] {
        events.push(json!({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "args": json!({"name": label}),
        }));
    }

    // Wall track: measured begin/duration in microseconds.
    for r in session.records() {
        let ts = r.t_ns as f64 / 1000.0;
        match r.kind {
            RecordKind::Instant => events.push(json!({
                "name": r.name.clone(),
                "cat": r.cat.clone(),
                "ph": "i",
                "s": "t",
                "ts": ts,
                "pid": 1,
                "tid": TID_WALL,
                "args": args_object(r),
            })),
            RecordKind::SpanClosed | RecordKind::SpanOpen => events.push(json!({
                "name": r.name.clone(),
                "cat": r.cat.clone(),
                "ph": "X",
                "ts": ts,
                "dur": r.wall_dur_ns as f64 / 1000.0,
                "pid": 1,
                "tid": TID_WALL,
                "args": args_object(r),
            })),
        }
    }

    // Cycle track: spans with logical extent, children packed inside
    // their parent. Records are in begin order, so a parent's slot is
    // always assigned before its children ask for one.
    let mut root_cursor = 0u64;
    let mut child_cursor: BTreeMap<usize, u64> = BTreeMap::new();
    for (idx, r) in session.records().iter().enumerate() {
        if matches!(r.kind, RecordKind::Instant) {
            continue;
        }
        let total = r.total_cycles();
        if total == 0 {
            continue;
        }
        let ts = match r.parent {
            None => root_cursor,
            // A parent with cycle-carrying children has a slot of its
            // own (child cycles propagate upward), so the lookup holds.
            Some(p) => *child_cursor.get(&p).expect("parent placed first"),
        };
        match r.parent {
            None => root_cursor += total,
            Some(p) => *child_cursor.get_mut(&p).expect("parent placed first") += total,
        }
        child_cursor.insert(idx, ts);
        events.push(json!({
            "name": r.name.clone(),
            "cat": r.cat.clone(),
            "ph": "X",
            "ts": ts as f64,
            "dur": total as f64,
            "pid": 1,
            "tid": TID_CYCLES,
            "args": args_object(r),
        }));
    }

    let doc = json!({
        "traceEvents": events,
        "displayTimeUnit": "ms",
    });
    let mut s = serde_json::to_string_pretty(&doc).expect("serializable");
    s.push('\n');
    s
}

/// Render a top-`k` text summary: simulated cycles by GEMM site, vector
/// cycles by site, and quantization saturation by cut site.
pub fn trace_report(session: &TraceSession, k: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!("== trace report: {} ==\n", session.name()));

    let mut gemms: Vec<_> = session.gemm_sites().iter().collect();
    gemms.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(b.0)));
    let total_gemm: u64 = gemms.iter().map(|(_, g)| g.cycles).sum();
    out.push_str(&format!("-- top {k} GEMM sites by simulated cycles (total {total_gemm}) --\n"));
    for (name, g) in gemms.iter().take(k) {
        out.push_str(&format!(
            "{:>12} cyc  {:>5.1}% util  x{:<5} {}\n",
            g.cycles,
            100.0 * g.utilization(),
            g.count,
            name
        ));
    }

    let mut vecs: Vec<_> = session.vector_sites().iter().collect();
    vecs.sort_by(|a, b| b.1.cycles.cmp(&a.1.cycles).then(a.0.cmp(b.0)));
    if !vecs.is_empty() {
        out.push_str(&format!("-- top {k} vector sites by simulated cycles --\n"));
        for (name, v) in vecs.iter().take(k) {
            out.push_str(&format!(
                "{:>12} cyc  {:>12} elems  x{:<5} {}\n",
                v.cycles, v.elements, v.count, name
            ));
        }
    }

    let mut sites: Vec<_> = session.quant_sites().iter().collect();
    sites.sort_by(|a, b| {
        b.1.saturation_rate()
            .partial_cmp(&a.1.saturation_rate())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(b.0))
    });
    out.push_str(&format!("-- top {k} cut sites by saturation --\n"));
    for (name, q) in sites.iter().take(k) {
        out.push_str(&format!(
            "{:>8.3}% sat  {:>8.3}% uflow  {:>12} elems  amax {:<10.4e} {}\n",
            100.0 * q.saturation_rate(),
            100.0 * if q.elements == 0 { 0.0 } else { q.underflowed as f64 / q.elements as f64 },
            q.elements,
            q.amax_max,
            name
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{GemmCost, QuantEvent};

    fn demo_session() -> TraceSession {
        let mut s = TraceSession::new("demo");
        let blk = s.begin("enc.0", "block");
        s.gemm(
            "enc.0.q",
            [16, 8, 8],
            GemmCost {
                cycles: 100,
                macs: 1024,
                active_cycles: 80,
                sram_bytes: 512,
            },
        );
        s.vector("enc.0.softmax", 40, 256);
        s.quant(&QuantEvent {
            site: "enc.0.q.in",
            format: "P8E1",
            amax: 3.5,
            elements: 128,
            saturated: 2,
            underflowed: 0,
            nonfinite_in: 0,
            nonfinite_out: 0,
        });
        s.end(blk);
        s
    }

    #[test]
    fn jsonl_lines_parse() {
        let s = demo_session();
        let text = jsonl(&s);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), s.records().len());
        for line in &lines {
            let v = serde_json::from_str(line).unwrap();
            assert!(v["name"].as_str().is_some());
            assert!(v["type"].as_str().is_some());
        }
        // the block span carries the accumulated logical extent
        let first = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["cycles_total"].as_u64(), Some(140));
    }

    #[test]
    fn chrome_trace_has_nested_cycle_track() {
        let s = demo_session();
        let doc = serde_json::from_str(&chrome_trace(&s)).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        // cycle-track events: block (total 140) then gemm at ts 0, vector at 100
        let cyc: Vec<_> = events
            .iter()
            .filter(|e| e["tid"].as_u64() == Some(2) && e["ph"] == "X")
            .collect();
        assert_eq!(cyc.len(), 3);
        assert_eq!(cyc[0]["name"], "enc.0");
        assert_eq!(cyc[0]["dur"].as_f64(), Some(140.0));
        assert_eq!(cyc[1]["name"], "enc.0.q");
        assert_eq!(cyc[1]["ts"].as_f64(), Some(0.0));
        assert_eq!(cyc[2]["name"], "enc.0.softmax");
        assert_eq!(cyc[2]["ts"].as_f64(), Some(100.0));
        // wall track carries the quant instant
        assert!(events
            .iter()
            .any(|e| e["ph"] == "i" && e["cat"] == "quant"));
    }

    #[test]
    fn report_mentions_hot_sites() {
        let s = demo_session();
        let r = trace_report(&s, 5);
        assert!(r.contains("enc.0.q"), "{r}");
        assert!(r.contains("softmax"), "{r}");
        assert!(r.contains("sat"), "{r}");
    }
}
