//! Bounded MPMC admission queue with explicit backpressure.
//!
//! Admission control is the first line of overload defence: a server that
//! accepts everything converts overload into unbounded latency for
//! *every* request, while a bounded queue converts it into fast, explicit
//! [`Rejected::QueueFull`] rejections for the excess — the callers that
//! are rejected know immediately, and the callers that are admitted still
//! get bounded queueing delay. Producers never block; consumers block
//! until work arrives or the queue is closed.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Why an offered item was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The queue already holds `capacity` items — shed the request
    /// instead of growing the backlog. Carries the observed backlog so
    /// overload controllers and telemetry can distinguish "full at 8"
    /// from "full at 4096" without re-querying the queue.
    QueueFull {
        /// Items waiting when the push was rejected.
        depth: usize,
        /// Admission capacity of the rejecting queue.
        capacity: usize,
    },
    /// The queue was closed (server shutting down).
    Closed,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Rejected::QueueFull { depth, capacity } => {
                write!(f, "queue full ({depth}/{capacity})")
            }
            Rejected::Closed => write!(f, "queue closed"),
        }
    }
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
    max_depth: usize,
}

/// A fixed-capacity multi-producer multi-consumer FIFO on
/// `Mutex` + `Condvar` (no external dependencies).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Take the queue lock, recovering from poison. A worker that panics
    /// while holding this lock poisons it for every *other* worker and
    /// producer; every critical section here either completes its
    /// mutation or leaves the deque untouched, so the state behind a
    /// poisoned lock is still coherent — recovering keeps the rest of
    /// the fleet serving instead of cascading one panic into a total
    /// outage.
    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Queue admitting at most `capacity` waiting items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity),
                closed: false,
                max_depth: 0,
            }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Offer an item without blocking. Full or closed queues reject —
    /// the item comes back with the reason so the caller can account for
    /// the shed.
    pub fn try_push(&self, item: T) -> Result<(), (T, Rejected)> {
        let mut g = self.lock();
        if g.closed {
            return Err((item, Rejected::Closed));
        }
        if g.items.len() >= self.capacity {
            let why = Rejected::QueueFull {
                depth: g.items.len(),
                capacity: self.capacity,
            };
            return Err((item, why));
        }
        g.items.push_back(item);
        g.max_depth = g.max_depth.max(g.items.len());
        drop(g);
        self.ready.notify_one();
        Ok(())
    }

    /// Take the next item, blocking until one arrives. `None` once the
    /// queue is closed *and* drained — the consumer's shutdown signal.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if let Some(item) = g.items.pop_front() {
                return Some(item);
            }
            if g.closed {
                return None;
            }
            g = self.ready.wait(g).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Close the queue: producers are rejected from now on, consumers
    /// drain the backlog and then observe `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Items currently waiting.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// `true` when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// High-water mark of the backlog since construction.
    pub fn max_depth(&self) -> usize {
        self.lock().max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rejects_when_full_and_when_closed() {
        let q = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        let (item, why) = q.try_push(3).unwrap_err();
        assert_eq!(
            (item, why),
            (3, Rejected::QueueFull { depth: 2, capacity: 2 })
        );
        assert_eq!(why.to_string(), "queue full (2/2)");
        assert_eq!(q.max_depth(), 2);
        q.close();
        let (_, why) = q.try_push(4).unwrap_err();
        assert_eq!(why, Rejected::Closed);
        // The backlog still drains after close.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn capacity_floor_is_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_err());
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut admitted = 0u64;
        let mut shed = 0u64;
        for i in 0..200u64 {
            // Retry QueueFull a few times so consumers make progress;
            // count what is ultimately shed.
            let mut item = i;
            let mut ok = false;
            for _ in 0..50 {
                match q.try_push(item) {
                    Ok(()) => {
                        ok = true;
                        break;
                    }
                    Err((back, Rejected::QueueFull { .. })) => {
                        item = back;
                        std::thread::yield_now();
                    }
                    Err((_, Rejected::Closed)) => unreachable!(),
                }
            }
            if ok {
                admitted += 1;
            } else {
                shed += 1;
            }
        }
        q.close();
        let total: u64 = consumers
            .into_iter()
            .map(|h| h.join().unwrap().len() as u64)
            .sum();
        assert_eq!(total, admitted);
        assert_eq!(admitted + shed, 200);
    }
}
