//! The threaded serving runtime: real workers over the bounded
//! admission queue.
//!
//! This is the deployment shape of the same machinery the deterministic
//! simulation drives: `workers` OS threads pull from a [`BoundedQueue`],
//! run requests through one shared [`Engine`], and coordinate
//! degradation through a mutex-guarded [`CircuitBreaker`]. The breaker
//! lock is held only for the route/record calls — never across a forward
//! pass — so workers contend for microseconds, not model latency.
//!
//! Two semantics differ from the simulation, deliberately:
//!
//! - **Time** is a logical tick (one per breaker interaction), not
//!   virtual µs — real threads have no deterministic clock, and the
//!   breaker only needs ordering.
//! - **Deadlines** are enforced as service budgets from the moment a
//!   worker picks the request up: the block-budget token still cancels
//!   mid-model, but queue wait is not counted against it.
//!
//! Aggregate counters from a threaded run match the simulation's
//! *reconciliation invariant* (every submission ends in exactly one
//! outcome), but ordering-dependent details (which request trips the
//! breaker) are scheduling-dependent — that is what the simulation is
//! for.

use crate::breaker::{CircuitBreaker, Transition};
use crate::config::ServeConfig;
use crate::engine::Engine;
use crate::queue::{BoundedQueue, Rejected};
use crate::request::{Request, Response};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::JoinHandle;

struct Shared {
    engine: Engine,
    breaker: Mutex<CircuitBreaker>,
    queue: BoundedQueue<Request>,
    responses: Mutex<Vec<Response>>,
    clock: AtomicU64,
}

impl Shared {
    /// Breaker lock with poison recovery: if a worker panicked holding
    /// it, the breaker inside is still a coherent state machine (its
    /// methods never leave it half-updated across an unwind point), and
    /// losing one health sample is strictly better than every remaining
    /// worker panicking on `PoisonError` — one bad attempt must degrade,
    /// not take down the fleet.
    fn breaker(&self) -> MutexGuard<'_, CircuitBreaker> {
        self.breaker.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Response-log lock, same poison-recovery rationale: `push` either
    /// appends or doesn't, so the vec behind a poisoned lock is intact.
    fn responses(&self) -> MutexGuard<'_, Vec<Response>> {
        self.responses.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A running pool of serving workers.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

/// What a server run produced, available after [`Server::shutdown`].
#[derive(Debug, Clone)]
pub struct ServerStats {
    /// Every response (served, shed, and missed), sorted by request id.
    pub responses: Vec<Response>,
    /// Breaker trips over the run.
    pub breaker_trips: u64,
    /// Breaker state changes, timestamped with the logical tick.
    pub transitions: Vec<Transition>,
    /// High-water mark of the admission queue.
    pub max_queue_depth: u64,
}

impl Server {
    /// Spawn `cfg.workers` threads serving `engine`.
    pub fn start(engine: Engine, cfg: &ServeConfig) -> Self {
        let cfg = cfg.clone().normalized();
        let shared = Arc::new(Shared {
            engine,
            breaker: Mutex::new(CircuitBreaker::new(cfg.breaker)),
            queue: BoundedQueue::new(cfg.queue_cap),
            responses: Mutex::new(Vec::new()),
            clock: AtomicU64::new(0),
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let sh = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&sh))
            })
            .collect();
        Self { shared, workers }
    }

    /// Submit one request. A full queue sheds it immediately: the shed
    /// response is recorded and `Err(Rejected::QueueFull)` tells the
    /// caller backpressure is in effect.
    pub fn submit(&self, req: Request) -> Result<(), Rejected> {
        match self.shared.queue.try_push(req) {
            Ok(()) => Ok(()),
            Err((req, why)) => {
                if matches!(why, Rejected::QueueFull { .. }) {
                    self.shared.responses().push(Response::shed(&req));
                }
                Err(why)
            }
        }
    }

    /// Requests admitted but not yet picked up.
    pub fn queue_len(&self) -> usize {
        self.shared.queue.len()
    }

    /// Close admission, drain the queue, join every worker, and return
    /// the run's outcomes.
    pub fn shutdown(self) -> ServerStats {
        self.shared.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
        let breaker = self.shared.breaker();
        let mut responses = std::mem::take(&mut *self.shared.responses());
        responses.sort_by_key(|r| r.id);
        ServerStats {
            responses,
            breaker_trips: breaker.trips(),
            transitions: breaker.transitions().to_vec(),
            max_queue_depth: self.shared.queue.max_depth() as u64,
        }
    }
}

fn worker_loop(sh: &Shared) {
    while let Some(req) = sh.queue.pop() {
        let out = sh.engine.process(
            &req,
            req.arrival_us,
            |_| {
                let t = sh.clock.fetch_add(1, Ordering::Relaxed);
                sh.breaker().route(t)
            },
            |h, _| {
                let t = sh.clock.fetch_add(1, Ordering::Relaxed);
                sh.breaker().on_primary_outcome(h, t)
            },
        );
        sh.responses().push(out.response);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::OutcomeKind;
    use qt_robust::NoFaults;
    use qt_transformer::{Model, TaskHead, TransformerConfig};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn engine(cfg: &ServeConfig) -> Engine {
        let mut rng = StdRng::seed_from_u64(11);
        let model = Model::new(
            TransformerConfig::mobilebert_tiny_sim(),
            TaskHead::Classify(2),
            &mut rng,
        );
        Engine::new(model, cfg, Box::new(NoFaults))
    }

    fn request(id: u64, vocab: usize) -> Request {
        let mut rng = StdRng::seed_from_u64(500 + id);
        Request::new(id, (0..8).map(|_| rng.gen_range(0..vocab)).collect())
    }

    #[test]
    fn threaded_server_serves_all_and_reconciles() {
        let cfg = ServeConfig {
            workers: 3,
            queue_cap: 64,
            ..ServeConfig::default()
        };
        let eng = engine(&cfg);
        let vocab = eng.model().cfg.vocab;
        let server = Server::start(eng, &cfg);
        let offered = 24u64;
        let mut shed = 0u64;
        for id in 0..offered {
            if server.submit(request(id, vocab)).is_err() {
                shed += 1;
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.responses.len() as u64, offered);
        let served = stats
            .responses
            .iter()
            .filter(|r| r.outcome.is_served())
            .count() as u64;
        let recorded_shed = stats
            .responses
            .iter()
            .filter(|r| r.outcome == OutcomeKind::ShedQueueFull)
            .count() as u64;
        assert_eq!(recorded_shed, shed);
        assert_eq!(served + recorded_shed, offered, "no deadline set: all else serves");
        // Every response id is unique and in range.
        let mut ids: Vec<u64> = stats.responses.iter().map(|r| r.id).collect();
        ids.dedup();
        assert_eq!(ids.len() as u64, offered);
    }

    /// A worker that panics while holding the coordination locks must
    /// not take the rest of the fleet with it: the poisoned locks are
    /// recovered and a fresh worker keeps serving.
    #[test]
    fn poisoned_locks_recover_instead_of_cascading() {
        let cfg = ServeConfig {
            workers: 1,
            queue_cap: 8,
            ..ServeConfig::default()
        }
        .normalized();
        let eng = engine(&cfg);
        let vocab = eng.model().cfg.vocab;
        let shared = Arc::new(Shared {
            engine: eng,
            breaker: Mutex::new(CircuitBreaker::new(cfg.breaker)),
            queue: BoundedQueue::new(cfg.queue_cap),
            responses: Mutex::new(Vec::new()),
            clock: AtomicU64::new(0),
        });
        // Induce the failure mode: a thread panics while holding both
        // coordination locks, poisoning them for everyone else.
        let sh = Arc::clone(&shared);
        let _ = std::thread::spawn(move || {
            let _breaker = sh.breaker.lock().unwrap();
            let _responses = sh.responses.lock().unwrap();
            panic!("induced worker panic");
        })
        .join();
        assert!(shared.breaker.lock().is_err(), "breaker lock is poisoned");
        assert!(shared.responses.lock().is_err(), "response lock is poisoned");
        // A fresh worker must still serve through the poisoned locks.
        shared
            .queue
            .try_push(request(0, vocab))
            .expect("queue admits");
        shared.queue.close();
        worker_loop(&shared);
        let responses = shared.responses();
        assert_eq!(responses.len(), 1);
        assert!(responses[0].outcome.is_served());
    }

    #[test]
    fn tiny_queue_sheds_with_backpressure_error() {
        let cfg = ServeConfig {
            workers: 1,
            queue_cap: 1,
            ..ServeConfig::default()
        };
        let eng = engine(&cfg);
        let vocab = eng.model().cfg.vocab;
        let server = Server::start(eng, &cfg);
        let offered = 32u64;
        let mut rejected = 0u64;
        for id in 0..offered {
            if let Err(e) = server.submit(request(id, vocab)) {
                assert!(matches!(e, Rejected::QueueFull { depth: 1, capacity: 1 }));
                rejected += 1;
            }
        }
        let stats = server.shutdown();
        assert_eq!(stats.responses.len() as u64, offered);
        let shed = stats
            .responses
            .iter()
            .filter(|r| r.outcome == OutcomeKind::ShedQueueFull)
            .count() as u64;
        assert_eq!(shed, rejected, "every rejection has a shed response");
    }
}
