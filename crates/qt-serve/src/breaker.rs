//! Health-driven circuit breaker over the quantized inference path.
//!
//! A single flagged forward pass is retried; a *pattern* of them means
//! the fault environment has shifted (SRAM corruption burst, failing
//! rail) and retrying every request just burns deadline budget. The
//! breaker watches a sliding [`HealthWindow`] of primary-path outcomes
//! and, once the unhealthy rate crosses threshold, trips: requests are
//! routed to the degraded BF16 reference path (pristine weights, no
//! 8-bit storage to corrupt) for a cooldown, then half-open probes test
//! the 8-bit path until enough consecutive clean probes restore it.
//!
//! Classic three-state machine, denominated in *requests* rather than
//! wall time so the whole trajectory is deterministic:
//!
//! ```text
//! Closed ──rate ≥ trip_rate──▶ Open ──cooldown requests──▶ HalfOpen
//!    ▲                          ▲                            │
//!    └──── probes all clean ────┼──── probe flagged ─────────┘
//! ```

use qt_quant::{HealthWindow, TensorHealth};

/// Breaker state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Primary 8-bit path in service.
    Closed,
    /// Primary path out of service; everything degrades.
    Open,
    /// Probing the primary path with live requests.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name (metrics labels, JSON, trace args).
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }

    /// Stable numeric code for trace-event args (0/1/2 in declaration
    /// order).
    pub fn code(self) -> u8 {
        match self {
            BreakerState::Closed => 0,
            BreakerState::Open => 1,
            BreakerState::HalfOpen => 2,
        }
    }
}

/// When to trip, how long to stay tripped, and what it takes to close.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerPolicy {
    /// Sliding-window size, in primary-path outcomes.
    pub window: usize,
    /// Outcomes required in the window before the trip rate is consulted
    /// (prevents one early upset from tripping an empty window).
    pub min_samples: usize,
    /// Unhealthy fraction at or above which the breaker trips.
    pub trip_rate: f64,
    /// Requests routed degraded after a trip before probing starts.
    pub cooldown_requests: u64,
    /// Consecutive clean probes required to close again.
    pub probe_successes: u32,
}

impl Default for BreakerPolicy {
    fn default() -> Self {
        Self {
            window: 32,
            min_samples: 8,
            trip_rate: 0.5,
            cooldown_requests: 16,
            probe_successes: 3,
        }
    }
}

/// Where the breaker routes one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Quantized 8-bit path.
    Primary,
    /// BF16 reference path on pristine weights.
    Degraded,
}

/// One recorded state change, on the runtime's virtual clock.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Virtual time of the change, µs.
    pub at_us: u64,
    /// State before.
    pub from: BreakerState,
    /// State after.
    pub to: BreakerState,
    /// Window unhealthy rate at the moment of the change.
    pub unhealthy_rate: f64,
}

/// The breaker itself: policy + window + state machine + audit log.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    policy: BreakerPolicy,
    state: BreakerState,
    window: HealthWindow,
    cooldown_left: u64,
    probes_ok: u32,
    trips: u64,
    transitions: Vec<Transition>,
}

impl CircuitBreaker {
    /// Closed breaker with an empty window.
    pub fn new(policy: BreakerPolicy) -> Self {
        Self {
            policy,
            state: BreakerState::Closed,
            window: HealthWindow::new(policy.window),
            cooldown_left: 0,
            probes_ok: 0,
            trips: 0,
            transitions: Vec::new(),
        }
    }

    /// Closed breaker that remembers `trips` prior trips — for resuming
    /// a node whose trip history was recovered from a durable
    /// [`crate::HealthSnapshot`], so monitoring counters stay continuous
    /// across a crash/restart.
    pub fn with_initial_trips(policy: BreakerPolicy, trips: u64) -> Self {
        Self {
            trips,
            ..Self::new(policy)
        }
    }

    /// Current state.
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Times the breaker has tripped (Closed/HalfOpen → Open).
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Every state change, in order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Unhealthy fraction of the current window.
    pub fn unhealthy_rate(&self) -> f64 {
        self.window.unhealthy_rate()
    }

    /// The sliding window of primary-path outcomes.
    pub fn window(&self) -> &HealthWindow {
        &self.window
    }

    /// Route the next request. Open-state calls are what count the
    /// cooldown down; the request that exhausts it becomes the first
    /// half-open probe.
    pub fn route(&mut self, now_us: u64) -> Route {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => Route::Primary,
            BreakerState::Open => {
                self.cooldown_left = self.cooldown_left.saturating_sub(1);
                if self.cooldown_left == 0 {
                    self.probes_ok = 0;
                    self.transition(now_us, BreakerState::HalfOpen);
                    Route::Primary
                } else {
                    Route::Degraded
                }
            }
        }
    }

    /// Record the health of one completed primary-path attempt. Drives
    /// trips (Closed), probe verdicts (HalfOpen), and is ignored while
    /// Open (a straggler that started before the trip).
    pub fn on_primary_outcome(&mut self, health: &TensorHealth, now_us: u64) {
        let unhealthy = HealthWindow::is_unhealthy(health);
        match self.state {
            BreakerState::Closed => {
                self.window.push(*health);
                if self.window.len() >= self.policy.min_samples.max(1)
                    && self.window.unhealthy_rate() >= self.policy.trip_rate
                {
                    self.trip(now_us);
                }
            }
            BreakerState::HalfOpen => {
                if unhealthy {
                    self.trip(now_us);
                } else {
                    self.probes_ok += 1;
                    if self.probes_ok >= self.policy.probe_successes.max(1) {
                        // Clean slate: stale fault history must not
                        // re-trip a recovered path.
                        self.window.clear();
                        self.transition(now_us, BreakerState::Closed);
                    }
                }
            }
            BreakerState::Open => {}
        }
    }

    /// Force the breaker Open with a full cooldown, regardless of window
    /// state — the replica-lifecycle hook. A node that crashed and came
    /// back must not be trusted with primary traffic on the strength of
    /// pre-crash health: it re-earns service through the same cooldown →
    /// HalfOpen → probe path as a fault trip. Counts as a trip (any
    /// entry into Open does). No-op when already Open.
    pub fn force_open(&mut self, now_us: u64) {
        if self.state != BreakerState::Open {
            self.trip(now_us);
        }
    }

    /// Advance the Open cooldown by one notch *without* routing a
    /// request, transitioning to HalfOpen when it expires.
    ///
    /// [`CircuitBreaker::route`] counts the cooldown down as requests
    /// arrive, which is right when the breaker itself is the router. In
    /// a fleet, an Open replica receives *no* traffic at all — so the
    /// fleet's router calls this once per routing decision in which the
    /// replica was considered and skipped, keeping recovery denominated
    /// in observed demand (deterministic) rather than wall time.
    /// Returns the state after the tick.
    pub fn tick_open(&mut self, now_us: u64) -> BreakerState {
        if self.state == BreakerState::Open {
            self.cooldown_left = self.cooldown_left.saturating_sub(1);
            if self.cooldown_left == 0 {
                self.probes_ok = 0;
                self.transition(now_us, BreakerState::HalfOpen);
            }
        }
        self.state
    }

    fn trip(&mut self, now_us: u64) {
        self.trips += 1;
        self.cooldown_left = self.policy.cooldown_requests.max(1);
        self.transition(now_us, BreakerState::Open);
    }

    fn transition(&mut self, at_us: u64, to: BreakerState) {
        self.transitions.push(Transition {
            at_us,
            from: self.state,
            to,
            unhealthy_rate: self.window.unhealthy_rate(),
        });
        self.state = to;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean() -> TensorHealth {
        TensorHealth {
            elements: 8,
            ..TensorHealth::default()
        }
    }

    fn bad() -> TensorHealth {
        TensorHealth {
            elements: 8,
            nonfinite_out: 1,
            ..TensorHealth::default()
        }
    }

    fn policy() -> BreakerPolicy {
        BreakerPolicy {
            window: 8,
            min_samples: 4,
            trip_rate: 0.5,
            cooldown_requests: 3,
            probe_successes: 2,
        }
    }

    #[test]
    fn full_round_trip_closed_open_halfopen_closed() {
        let mut b = CircuitBreaker::new(policy());
        assert_eq!(b.state(), BreakerState::Closed);
        // Two clean, then unhealthy outcomes until the rate trips.
        b.on_primary_outcome(&clean(), 1);
        b.on_primary_outcome(&clean(), 2);
        b.on_primary_outcome(&bad(), 3);
        assert_eq!(b.state(), BreakerState::Closed, "below min_samples");
        b.on_primary_outcome(&bad(), 4);
        assert_eq!(b.state(), BreakerState::Open, "2/4 unhealthy trips at 0.5");
        assert_eq!(b.trips(), 1);
        // Cooldown: 2 degraded routes, the 3rd becomes the probe.
        assert_eq!(b.route(5), Route::Degraded);
        assert_eq!(b.route(6), Route::Degraded);
        assert_eq!(b.route(7), Route::Primary);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // One clean probe is not enough; the second closes.
        b.on_primary_outcome(&clean(), 8);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_primary_outcome(&clean(), 9);
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.unhealthy_rate(), 0.0, "window cleared on close");
        let kinds: Vec<(BreakerState, BreakerState)> =
            b.transitions().iter().map(|t| (t.from, t.to)).collect();
        assert_eq!(
            kinds,
            vec![
                (BreakerState::Closed, BreakerState::Open),
                (BreakerState::Open, BreakerState::HalfOpen),
                (BreakerState::HalfOpen, BreakerState::Closed),
            ]
        );
    }

    #[test]
    fn flagged_probe_reopens() {
        let mut b = CircuitBreaker::new(policy());
        for t in 0..4 {
            b.on_primary_outcome(&bad(), t);
        }
        assert_eq!(b.state(), BreakerState::Open);
        while b.route(10) == Route::Degraded {}
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.on_primary_outcome(&bad(), 11);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
    }

    #[test]
    fn force_open_then_tick_reaches_halfopen_and_probes_close() {
        let mut b = CircuitBreaker::with_initial_trips(policy(), 5);
        assert_eq!(b.trips(), 5, "resumed trip history");
        assert_eq!(b.state(), BreakerState::Closed);
        b.force_open(100);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 6, "forcing open counts as a trip");
        b.force_open(101);
        assert_eq!(b.trips(), 6, "idempotent while already open");
        // cooldown_requests = 3: two ticks stay Open, the third probes.
        assert_eq!(b.tick_open(102), BreakerState::Open);
        assert_eq!(b.tick_open(103), BreakerState::Open);
        assert_eq!(b.tick_open(104), BreakerState::HalfOpen);
        assert_eq!(b.tick_open(105), BreakerState::HalfOpen, "tick is Open-only");
        b.on_primary_outcome(&clean(), 106);
        b.on_primary_outcome(&clean(), 107);
        assert_eq!(b.state(), BreakerState::Closed, "probes re-earn service");
    }

    #[test]
    fn open_ignores_straggler_outcomes() {
        let mut b = CircuitBreaker::new(policy());
        for t in 0..4 {
            b.on_primary_outcome(&bad(), t);
        }
        assert_eq!(b.state(), BreakerState::Open);
        let before = b.transitions().len();
        b.on_primary_outcome(&clean(), 5);
        b.on_primary_outcome(&bad(), 6);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.transitions().len(), before);
    }
}
