//! Deterministic discrete-event serving simulation and its report.
//!
//! The chaos experiments need the *whole serving story* — admission,
//! queueing, deadlines, retries, breaker trips — to replay bit-exactly,
//! independent of host load and of the `QT_THREADS` kernel pool. So the
//! driver is a single-threaded discrete-event simulation on a virtual
//! microsecond clock: workers are simulated resources (their count is a
//! config knob, not a thread count), service time is blocks-executed ×
//! per-block cost plus retry backoff, and every event is processed in
//! (time, kind, sequence) order. The forward passes inside still run on
//! the real qt-par kernels, whose results are bitwise identical at any
//! pool size — which is exactly why the report's counters are too.

use crate::breaker::{CircuitBreaker, Transition};
use crate::config::ServeConfig;
use crate::engine::Engine;
use crate::request::{OutcomeKind, Request, Response};
use qt_robust::cell_seed;
use qt_trace::{LogHist, TraceHandle};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde_json::{json, Value};
use std::collections::{BinaryHeap, VecDeque};

/// Open-loop load: arrivals at a fixed rate for a fixed duration, all
/// sharing one relative deadline.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSpec {
    /// Offered requests per second (virtual time).
    pub rps: f64,
    /// Virtual duration arrivals are generated for, µs.
    pub duration_us: u64,
    /// Per-request deadline budget after arrival, µs (0 = no deadline).
    pub deadline_us: u64,
    /// Tokens per request.
    pub seq: usize,
    /// Seed for the token streams (per-request streams derived from it).
    pub seed: u64,
}

impl LoadSpec {
    /// Generate the arrival schedule: evenly spaced, ids in arrival
    /// order, token ids drawn per request from a seed mixed with the
    /// request id.
    pub fn requests(&self, vocab: usize) -> Vec<Request> {
        let interval = ((1e6 / self.rps.max(1e-6)) as u64).max(1);
        let mut out = Vec::new();
        let mut id = 0u64;
        let mut at = 0u64;
        while at < self.duration_us.max(1) {
            let mut rng = StdRng::seed_from_u64(cell_seed(self.seed, id as usize, 1, 0));
            let tokens = (0..self.seq.max(1))
                .map(|_| rng.gen_range(0..vocab.max(2)))
                .collect();
            let mut req = Request::new(id, tokens).with_arrival(at);
            if self.deadline_us > 0 {
                req = req.with_deadline(self.deadline_us);
            }
            out.push(req);
            id += 1;
            at += interval;
        }
        out
    }
}

/// Everything one simulated serving run produced.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests offered (arrivals).
    pub offered: u64,
    /// Served from the quantized primary path.
    pub served_primary: u64,
    /// Served from the degraded reference path.
    pub served_degraded: u64,
    /// Shed at admission (queue full).
    pub shed_queue_full: u64,
    /// Missed their deadline.
    pub deadline_miss: u64,
    /// Attempts flagged unhealthy (each retried or degraded).
    pub flagged_attempts: u64,
    /// Bits the fault source flipped across all weight reads.
    pub bits_flipped: u64,
    /// Breaker trips.
    pub breaker_trips: u64,
    /// Breaker state changes, in order, on the virtual clock.
    pub transitions: Vec<Transition>,
    /// End-to-end latency of non-shed requests, µs (log2 binades).
    pub latency: LogHist,
    /// Admission-to-service wait, µs (log2 binades).
    pub queue_wait: LogHist,
    /// High-water mark of the queue backlog.
    pub max_queue_depth: u64,
    /// Virtual time the last request finished, µs.
    pub end_us: u64,
    /// Every response, sorted by request id.
    pub responses: Vec<Response>,
}

impl ServeReport {
    /// The first invariant: every offered request ended in exactly one
    /// of the four outcome counters.
    pub fn reconciles(&self) -> bool {
        self.offered
            == self.served_primary + self.served_degraded + self.shed_queue_full + self.deadline_miss
    }

    /// Served fraction of offered load.
    pub fn goodput(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        (self.served_primary + self.served_degraded) as f64 / self.offered as f64
    }

    /// Shed fraction of offered load.
    pub fn shed_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.shed_queue_full as f64 / self.offered as f64
    }

    /// Deadline-miss fraction of offered load.
    pub fn miss_rate(&self) -> f64 {
        if self.offered == 0 {
            return 0.0;
        }
        self.deadline_miss as f64 / self.offered as f64
    }

    /// Degraded fraction of *served* responses.
    pub fn degraded_fraction(&self) -> f64 {
        let served = self.served_primary + self.served_degraded;
        if served == 0 {
            return 0.0;
        }
        self.served_degraded as f64 / served as f64
    }

    /// Latency percentile in µs (binade upper edge; `None` when nothing
    /// completed).
    pub fn latency_quantile_us(&self, q: f64) -> Option<f64> {
        self.latency.quantile(q)
    }

    /// The report as a deterministic JSON value — the `BENCH_serve.json`
    /// schema. Counters are exact integers; everything derived is f64.
    /// Contains no wall-clock data, so two runs with the same inputs
    /// serialize byte-identically.
    pub fn to_json(&self) -> Value {
        let transitions: Vec<Value> = self
            .transitions
            .iter()
            .map(|t| {
                json!({
                    "at_us": t.at_us,
                    "from": t.from.name(),
                    "to": t.to.name(),
                    "unhealthy_rate": t.unhealthy_rate,
                })
            })
            .collect();
        json!({
            "schema": "qt-serve/report/v1",
            "offered": self.offered,
            "served_primary": self.served_primary,
            "served_degraded": self.served_degraded,
            "shed_queue_full": self.shed_queue_full,
            "deadline_miss": self.deadline_miss,
            "reconciles": self.reconciles(),
            "flagged_attempts": self.flagged_attempts,
            "bits_flipped": self.bits_flipped,
            "goodput": self.goodput(),
            "shed_rate": self.shed_rate(),
            "miss_rate": self.miss_rate(),
            "degraded_fraction": self.degraded_fraction(),
            "latency_p50_us": self.latency_quantile_us(0.5).unwrap_or(0.0),
            "latency_p99_us": self.latency_quantile_us(0.99).unwrap_or(0.0),
            "queue_wait_p99_us": self.queue_wait.quantile(0.99).unwrap_or(0.0),
            "max_queue_depth": self.max_queue_depth,
            "breaker_trips": self.breaker_trips,
            "breaker_transitions": transitions,
            "end_us": self.end_us,
        })
    }
}

/// Event kinds, ordered so that at equal timestamps a completion frees
/// its worker before a simultaneous arrival is routed.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Ev {
    /// Worker `usize` finished its request.
    Done(usize),
    /// A request arrives.
    Arrival(Box<Request>),
}

impl Ev {
    fn rank(&self) -> u8 {
        match self {
            Ev::Done(_) => 0,
            Ev::Arrival(_) => 1,
        }
    }
}

/// Heap entry: min-ordered by (time, kind rank, insertion sequence).
struct Entry {
    at: u64,
    seq: u64,
    ev: Ev,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.ev.rank(), self.seq) == (other.at, other.ev.rank(), other.seq)
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.at, other.ev.rank(), other.seq).cmp(&(self.at, self.ev.rank(), self.seq))
    }
}

/// Run the simulation: feed `requests` (sorted by arrival) through
/// `workers` simulated service resources and a bounded FIFO, processing
/// each admitted request with [`Engine::process`] under the breaker in
/// `cfg`. Emits `serve.*` spans, instants, and metrics onto `trace`
/// when given.
pub fn run_sim(
    engine: &Engine,
    cfg: &ServeConfig,
    requests: &[Request],
    trace: Option<&TraceHandle>,
) -> ServeReport {
    run_sim_observed(engine, cfg, requests, trace, None)
}

/// [`run_sim`] with a telemetry plane attached: the identical event
/// loop and report, plus live time-series, SLO burn-rate evaluation,
/// request span trees, and a flight recorder (the single engine reports
/// as replica 0) accumulating in `telemetry`.
pub fn run_sim_observed(
    engine: &Engine,
    cfg: &ServeConfig,
    requests: &[Request],
    trace: Option<&TraceHandle>,
    telemetry: Option<&qt_telemetry::TelemetryHandle>,
) -> ServeReport {
    let cfg = cfg.clone().normalized();
    // RefCell because one `process` call consults the breaker from two
    // closures (route + record); the sim is single-threaded by design.
    let breaker = std::cell::RefCell::new(CircuitBreaker::new(cfg.breaker));
    let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
    let mut seq = 0u64;
    for r in requests {
        heap.push(Entry {
            at: r.arrival_us,
            seq,
            ev: Ev::Arrival(Box::new(r.clone())),
        });
        seq += 1;
    }

    let span = trace.map(|t| t.borrow_mut().begin("serve.sim", "serve"));

    let mut idle: std::collections::BTreeSet<usize> = (0..cfg.workers).collect();
    let mut queue: VecDeque<Request> = VecDeque::new();
    let mut report = ServeReport {
        offered: requests.len() as u64,
        served_primary: 0,
        served_degraded: 0,
        shed_queue_full: 0,
        deadline_miss: 0,
        flagged_attempts: 0,
        bits_flipped: 0,
        breaker_trips: 0,
        transitions: Vec::new(),
        latency: LogHist::default(),
        queue_wait: LogHist::default(),
        max_queue_depth: 0,
        end_us: 0,
        responses: Vec::new(),
    };

    // Start servicing `req` on worker `w` at time `now`; returns the
    // completion event.
    let start = |w: usize,
                 req: Request,
                 now: u64,
                 breaker: &std::cell::RefCell<CircuitBreaker>,
                 report: &mut ServeReport|
     -> Entry {
        let wait = now.saturating_sub(req.arrival_us);
        report.queue_wait.observe(wait as f32);
        if let Some(tel) = telemetry {
            let mut sink = tel.borrow_mut();
            sink.queue_wait(now, 0, wait);
            sink.dispatch(now, req.id, 0, "fresh");
        }
        let out = engine.process(
            &req,
            now,
            |t| breaker.borrow_mut().route(t),
            |h, t| breaker.borrow_mut().on_primary_outcome(h, t),
        );
        report.flagged_attempts += out.response.flagged as u64;
        report.bits_flipped += out.bits_flipped;
        let finish = out.response.finish_us;
        if let Some(tel) = telemetry {
            let resp = &out.response;
            let mut sink = tel.borrow_mut();
            sink.attempt(resp.id, 0, now, finish, resp.flagged > 0, true);
            sink.outcome(
                finish,
                resp.id,
                Some(0),
                resp.outcome.name(),
                resp.outcome.is_served(),
                resp.outcome == OutcomeKind::ShedQueueFull,
                resp.latency_us,
            );
        }
        record_response(report, out.response);
        Entry {
            at: finish,
            seq: 0, // patched by caller
            ev: Ev::Done(w),
        }
    };

    // Breaker transitions are streamed to the sink as they happen (so
    // breaker-open flight dumps freeze the ring at trip time), tracked
    // by a cursor into the breaker's transition log.
    let mut breaker_seen = 0usize;
    let drain_breaker =
        |breaker: &std::cell::RefCell<CircuitBreaker>, seen: &mut usize| {
            let Some(tel) = telemetry else { return };
            let b = breaker.borrow();
            let transitions = b.transitions();
            let mut sink = tel.borrow_mut();
            for tr in &transitions[*seen..] {
                sink.breaker(
                    tr.at_us,
                    0,
                    tr.from.name(),
                    tr.to.name(),
                    tr.to.code() as f64,
                    tr.unhealthy_rate,
                );
            }
            *seen = transitions.len();
        };

    while let Some(Entry { at: now, ev, .. }) = heap.pop() {
        report.end_us = report.end_us.max(now);
        match ev {
            Ev::Arrival(req) => {
                if let Some(tel) = telemetry {
                    tel.borrow_mut().arrival(now, req.id);
                }
                if let Some(&w) = idle.iter().next() {
                    idle.remove(&w);
                    let mut done = start(w, *req, now, &breaker, &mut report);
                    done.seq = seq;
                    seq += 1;
                    heap.push(done);
                    drain_breaker(&breaker, &mut breaker_seen);
                } else if queue.len() < cfg.queue_cap {
                    queue.push_back(*req);
                    report.max_queue_depth = report.max_queue_depth.max(queue.len() as u64);
                    if let Some(tel) = telemetry {
                        tel.borrow_mut().queue_depth(now, 0, queue.len());
                    }
                } else {
                    if let Some(tel) = telemetry {
                        tel.borrow_mut().outcome(
                            now,
                            req.id,
                            None,
                            OutcomeKind::ShedQueueFull.name(),
                            false,
                            true,
                            0,
                        );
                    }
                    record_response(&mut report, Response::shed(&req));
                }
            }
            Ev::Done(w) => {
                if let Some(req) = queue.pop_front() {
                    let mut done = start(w, req, now, &breaker, &mut report);
                    done.seq = seq;
                    seq += 1;
                    heap.push(done);
                    drain_breaker(&breaker, &mut breaker_seen);
                } else {
                    idle.insert(w);
                }
            }
        }
    }
    drain_breaker(&breaker, &mut breaker_seen);

    let breaker = breaker.into_inner();
    report.breaker_trips = breaker.trips();
    report.transitions = breaker.transitions().to_vec();
    report.responses.sort_by_key(|r| r.id);
    report.end_us = report
        .responses
        .iter()
        .map(|r| r.finish_us)
        .max()
        .unwrap_or(0);

    if let Some(t) = trace {
        let mut s = t.borrow_mut();
        for tr in &report.transitions {
            s.instant(
                "serve.breaker",
                "serve",
                vec![
                    ("at_us".to_string(), tr.at_us as f64),
                    ("from".to_string(), tr.from.code() as f64),
                    ("to".to_string(), tr.to.code() as f64),
                    ("unhealthy_rate".to_string(), tr.unhealthy_rate),
                ],
            );
        }
        let m = s.metrics_mut();
        m.counter_add("serve.offered", &[], report.offered);
        m.counter_add("serve.served_primary", &[], report.served_primary);
        m.counter_add("serve.served_degraded", &[], report.served_degraded);
        m.counter_add("serve.shed_queue_full", &[], report.shed_queue_full);
        m.counter_add("serve.deadline_miss", &[], report.deadline_miss);
        m.counter_add("serve.flagged_attempts", &[], report.flagged_attempts);
        m.counter_add("serve.breaker_trips", &[], report.breaker_trips);
        m.gauge_set("serve.max_queue_depth", &[], report.max_queue_depth as f64);
        // Paired with shed_queue_full this answers "full at what size?":
        // the [`Rejected::QueueFull`] context, threaded into the metrics.
        m.gauge_set("serve.queue_cap", &[], cfg.queue_cap as f64);
        m.gauge_set("serve.degraded_fraction", &[], report.degraded_fraction());
        for r in &report.responses {
            if r.outcome != OutcomeKind::ShedQueueFull {
                m.observe("serve.latency_us", &[], r.latency_us as f32);
            }
        }
        if let Some(span) = span {
            s.end(span);
        }
    }
    report
}

fn record_response(report: &mut ServeReport, resp: Response) {
    match resp.outcome {
        OutcomeKind::ServedPrimary => report.served_primary += 1,
        OutcomeKind::ServedDegraded => report.served_degraded += 1,
        OutcomeKind::ShedQueueFull => report.shed_queue_full += 1,
        OutcomeKind::DeadlineMiss => report.deadline_miss += 1,
    }
    if resp.outcome != OutcomeKind::ShedQueueFull {
        report.latency.observe(resp.latency_us as f32);
    }
    report.responses.push(resp);
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_robust::NoFaults;
    use qt_transformer::{Model, TaskHead, TransformerConfig};
    use rand::SeedableRng;

    fn engine(cfg: &ServeConfig) -> Engine {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let model = Model::new(
            TransformerConfig::mobilebert_tiny_sim(),
            TaskHead::Classify(2),
            &mut rng,
        );
        Engine::new(model, cfg, Box::new(NoFaults))
    }

    fn light_load(eng: &Engine) -> LoadSpec {
        // Inter-arrival far above one service time: nothing queues.
        LoadSpec {
            rps: 1e6 / (4.0 * eng.full_pass_us() as f64),
            duration_us: 60 * eng.full_pass_us(),
            deadline_us: 0,
            seq: 8,
            seed: 1,
        }
    }

    #[test]
    fn light_load_serves_everything_primary() {
        let cfg = ServeConfig::default();
        let eng = engine(&cfg);
        let reqs = light_load(&eng).requests(eng.model().cfg.vocab);
        let report = run_sim(&eng, &cfg, &reqs, None);
        assert!(report.reconciles());
        assert_eq!(report.served_primary, report.offered);
        assert_eq!(report.shed_queue_full, 0);
        assert_eq!(report.deadline_miss, 0);
        assert_eq!(report.breaker_trips, 0);
        assert_eq!(report.goodput(), 1.0);
    }

    #[test]
    fn overload_sheds_and_misses_but_reconciles() {
        let cfg = ServeConfig {
            workers: 1,
            queue_cap: 2,
            ..ServeConfig::default()
        };
        let eng = engine(&cfg);
        // 4× overload with deadlines of two service times.
        let spec = LoadSpec {
            rps: 4.0 * 1e6 / eng.full_pass_us() as f64,
            duration_us: 40 * eng.full_pass_us(),
            deadline_us: 2 * eng.full_pass_us(),
            seq: 8,
            seed: 2,
        };
        let reqs = spec.requests(eng.model().cfg.vocab);
        let report = run_sim(&eng, &cfg, &reqs, None);
        assert!(report.reconciles(), "counters must reconcile: {report:?}");
        assert!(report.shed_queue_full > 0, "2-deep queue under 4x load");
        assert!(report.served_primary > 0);
        assert!(report.max_queue_depth >= 1);
        assert_eq!(
            report.responses.len() as u64,
            report.offered,
            "every request has exactly one response"
        );
    }

    #[test]
    fn observed_sim_matches_report_and_reconciles() {
        use qt_telemetry::{Scope, TelemetryConfig, TelemetrySink};
        let cfg = ServeConfig {
            workers: 1,
            queue_cap: 2,
            ..ServeConfig::default()
        };
        let eng = engine(&cfg);
        let spec = LoadSpec {
            rps: 4.0 * 1e6 / eng.full_pass_us() as f64,
            duration_us: 40 * eng.full_pass_us(),
            deadline_us: 2 * eng.full_pass_us(),
            seq: 8,
            seed: 2,
        };
        let reqs = spec.requests(eng.model().cfg.vocab);
        let baseline = run_sim(&eng, &cfg, &reqs, None);
        let tel = TelemetrySink::handle(TelemetryConfig::default(), 1);
        let observed = run_sim_observed(&eng, &cfg, &reqs, None, Some(&tel));
        assert_eq!(baseline, observed, "observation must not perturb the sim");

        let sink = tel.borrow();
        let arrivals = sink
            .series_get(Scope::Fleet, "arrivals")
            .map(|s| s.counter_total())
            .unwrap_or(0);
        assert_eq!(arrivals, observed.offered);
        let responses = sink
            .series_get(Scope::Fleet, "responses")
            .map(|s| s.counter_total())
            .unwrap_or(0);
        assert_eq!(responses, observed.offered, "every request got an outcome");
        let served = sink
            .series_get(Scope::Fleet, "served")
            .map(|s| s.counter_total())
            .unwrap_or(0);
        assert_eq!(served, observed.served_primary + observed.served_degraded);
        let shed = sink
            .series_get(Scope::Fleet, "shed")
            .map(|s| s.counter_total())
            .unwrap_or(0);
        assert_eq!(shed, observed.shed_queue_full);
        // Every traced request closed with a complete span tree.
        assert_eq!(sink.book().len(), observed.offered as usize);
        for (_, t) in sink.book().iter() {
            assert!(t.is_complete(), "incomplete trace: {t:?}");
        }
    }

    #[test]
    fn sim_replays_bit_exactly() {
        let cfg = ServeConfig::default();
        let eng = engine(&cfg);
        let spec = LoadSpec {
            rps: 2.0 * 1e6 / eng.full_pass_us() as f64,
            duration_us: 30 * eng.full_pass_us(),
            deadline_us: 3 * eng.full_pass_us(),
            seq: 8,
            seed: 3,
        };
        let reqs = spec.requests(eng.model().cfg.vocab);
        let a = run_sim(&eng, &cfg, &reqs, None);
        let b = run_sim(&eng, &cfg, &reqs, None);
        assert_eq!(a, b);
        assert_eq!(
            serde_json::to_string(&a.to_json()).unwrap(),
            serde_json::to_string(&b.to_json()).unwrap()
        );
    }
}
