//! Serving-side memory integrity: build a qt-shield parity plane over a
//! model's quantized weight codes, and translate integrity events into
//! the `TensorHealth` language the breaker already speaks.
//!
//! The shield protects exactly what the paper's accelerator keeps
//! resident: one [`qt_quant::QuantizedTensor`]-shaped code plane per
//! parameter, quantized with the same deterministic
//! [`FakeQuant::quantize_to_codes`] path the engine's primary format
//! uses. That determinism is what makes quarantine → repair bit-exact:
//! re-quantizing the pristine f32 master weights reproduces the
//! original codes (and parity plane) to the bit, at any `QT_THREADS`.
//!
//! Serving semantics while a region is quarantined: the replica routes
//! attempts down the *existing* degraded path (BF16 from the pristine
//! f32 master — see [`crate::engine::Engine`]), so repair is invisible
//! to correctness and only costs the degraded format's latency. Reads
//! that hit a correctable fault before the scrubber gets there are
//! corrected transiently and still served on the primary path: the
//! corrected codes are identical to the pristine codes by construction.

use crate::engine::Engine;
use qt_quant::{ElemFormat, FakeQuant, TensorHealth};
use qt_shield::{EccRegion, Shield};
use qt_transformer::Model;

/// ECC-protect every parameter of `model` as `format` storage codes,
/// one region per parameter in `params.names()` order. `None` for
/// `Fp32` (a carrier, not a storage format).
pub fn shield_model(model: &Model, format: ElemFormat) -> Option<Shield> {
    if format == ElemFormat::Fp32 {
        return None;
    }
    let fq = FakeQuant::new(format);
    let mut regions = Vec::new();
    for name in model.params.names() {
        let qt = fq.quantize_to_codes(model.params.get(&name))?;
        regions.push(EccRegion::protect(&name, qt.codes()));
    }
    Some(Shield::new(regions))
}

/// Re-quantize one parameter from the pristine f32 master weights: the
/// repair payload for a quarantined region, bit-exact with what
/// [`shield_model`] protected. `None` for `Fp32`.
pub fn pristine_codes(model: &Model, format: ElemFormat, name: &str) -> Option<Vec<u16>> {
    let fq = FakeQuant::new(format);
    Some(fq.quantize_to_codes(model.params.get(name))?.codes().to_vec())
}

/// Repair payload addressed by region index within `engine`'s model, in
/// the same `params.names()` order [`shield_model`] used.
pub fn pristine_codes_for_region(
    engine: &Engine,
    format: ElemFormat,
    region: usize,
) -> Option<Vec<u16>> {
    let names = engine.model().params.names();
    pristine_codes(engine.model(), format, names.get(region)?)
}

/// An uncorrectable-storage detection expressed as [`TensorHealth`], so
/// scrub/repair events flow through the same unhealthy-attempt
/// accounting (and circuit breaker) as numerical faults: a poisoned
/// region is indistinguishable from a non-finite read, because that is
/// what the datapath would eventually see.
pub fn integrity_health(elements: u64, uncorrectable_words: u64) -> TensorHealth {
    TensorHealth {
        elements,
        nonfinite_out: uncorrectable_words,
        ..TensorHealth::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_quant::HealthWindow;
    use qt_transformer::{TaskHead, TransformerConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model() -> Model {
        let mut rng = StdRng::seed_from_u64(11);
        let mut cfg = TransformerConfig::mobilebert_tiny_sim();
        cfg.layers = 1;
        Model::new(cfg, TaskHead::Classify(2), &mut rng)
    }

    #[test]
    fn shield_covers_every_parameter_in_name_order() {
        let model = tiny_model();
        let shield = shield_model(&model, ElemFormat::P8E1).unwrap();
        let names = model.params.names();
        assert_eq!(shield.regions().len(), names.len());
        for (region, name) in shield.regions().iter().zip(&names) {
            assert_eq!(region.name(), name);
            assert_eq!(region.codes_len(), model.params.get(name).len());
        }
        assert!(shield_model(&model, ElemFormat::Fp32).is_none());
    }

    #[test]
    fn pristine_codes_match_protected_regions_bit_exactly() {
        let model = tiny_model();
        let shield = shield_model(&model, ElemFormat::E4M3).unwrap();
        for (i, name) in model.params.names().iter().enumerate() {
            let codes = pristine_codes(&model, ElemFormat::E4M3, name).unwrap();
            assert!(
                shield.regions()[i].matches_exact(&codes),
                "{name}: repair payload differs from protected plane"
            );
        }
    }

    #[test]
    fn repair_after_double_flip_is_bit_exact() {
        let model = tiny_model();
        let mut shield = shield_model(&model, ElemFormat::P8E1).unwrap();
        shield.inject(0, 0, 3);
        shield.inject(0, 0, 59);
        assert!(!shield.verify_reads().quarantined.is_empty());
        let name = model.params.names()[0].clone();
        let codes = pristine_codes(&model, ElemFormat::P8E1, &name).unwrap();
        shield.repair_region(0, &codes);
        assert!(!shield.has_quarantine());
        assert!(shield.regions()[0].matches_exact(&codes));
    }

    #[test]
    fn integrity_health_trips_the_unhealthy_gate() {
        assert!(HealthWindow::is_unhealthy(&integrity_health(1024, 1)));
        assert!(!HealthWindow::is_unhealthy(&integrity_health(1024, 0)));
    }
}
