//! Requests, responses, and the four-way outcome accounting.
//!
//! Every request admitted to the runtime ends in exactly one of four
//! outcomes, and the runtime's first invariant is that the four counters
//! reconcile to the offered load — a request can be shed, miss its
//! deadline, or be served (on the 8-bit primary path or the degraded
//! reference path), but it can never vanish. "Served" additionally means
//! the response was *clean*: a forward pass whose quantization health
//! carried non-finite traffic is flagged and retried or degraded, never
//! returned as a result.

/// One inference request: a token sequence with an arrival time and an
/// absolute deadline on the runtime's virtual clock (microseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Caller-assigned id; also the root of every per-request random
    /// stream (faults, retry jitter), so replays are exact.
    pub id: u64,
    /// Token ids of a single sequence.
    pub tokens: Vec<usize>,
    /// Arrival time on the virtual clock, µs.
    pub arrival_us: u64,
    /// Absolute deadline, µs ([`Request::NO_DEADLINE`] = none).
    pub deadline_us: u64,
}

impl Request {
    /// Sentinel deadline meaning "no deadline".
    pub const NO_DEADLINE: u64 = u64::MAX;

    /// Request with no deadline, arriving at time 0.
    pub fn new(id: u64, tokens: Vec<usize>) -> Self {
        Self {
            id,
            tokens,
            arrival_us: 0,
            deadline_us: Self::NO_DEADLINE,
        }
    }

    /// Set the arrival time (µs on the virtual clock).
    pub fn with_arrival(mut self, arrival_us: u64) -> Self {
        self.arrival_us = arrival_us;
        self
    }

    /// Set an absolute deadline `budget_us` after arrival.
    pub fn with_deadline(mut self, budget_us: u64) -> Self {
        self.deadline_us = self.arrival_us.saturating_add(budget_us);
        self
    }
}

/// How a request's story ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Served from the quantized 8-bit path with clean health.
    ServedPrimary,
    /// Served from the degraded reference (BF16, pristine weights) path.
    ServedDegraded,
    /// Rejected at admission: the bounded queue was full.
    ShedQueueFull,
    /// Aborted: the deadline's block budget ran out before a clean
    /// response existed.
    DeadlineMiss,
}

impl OutcomeKind {
    /// Stable lowercase name (used in metrics labels and JSON).
    pub fn name(self) -> &'static str {
        match self {
            OutcomeKind::ServedPrimary => "served_primary",
            OutcomeKind::ServedDegraded => "served_degraded",
            OutcomeKind::ShedQueueFull => "shed_queue_full",
            OutcomeKind::DeadlineMiss => "deadline_miss",
        }
    }

    /// `true` when the caller got a usable result.
    pub fn is_served(self) -> bool {
        matches!(
            self,
            OutcomeKind::ServedPrimary | OutcomeKind::ServedDegraded
        )
    }
}

/// The runtime's answer for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id.
    pub id: u64,
    /// How it ended.
    pub outcome: OutcomeKind,
    /// Argmax over the model's logits, for served outcomes only.
    pub label: Option<usize>,
    /// Forward attempts executed (0 for shed requests).
    pub attempts: u32,
    /// Attempts whose health was flagged unhealthy (each one retried or
    /// degraded — never returned).
    pub flagged: u32,
    /// Completion time on the virtual clock, µs.
    pub finish_us: u64,
    /// `finish_us - arrival_us` (0 for shed requests).
    pub latency_us: u64,
}

impl Response {
    /// The shed response for `req`: rejected instantly at admission.
    pub fn shed(req: &Request) -> Self {
        Self {
            id: req.id,
            outcome: OutcomeKind::ShedQueueFull,
            label: None,
            attempts: 0,
            flagged: 0,
            finish_us: req.arrival_us,
            latency_us: 0,
        }
    }
}
