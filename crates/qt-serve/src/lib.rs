//! qt-serve: resilient inference serving for quantized edge models.
//!
//! Serving an 8-bit model on edge hardware means serving it through an
//! environment that sheds load, misses deadlines, and flips bits. This
//! crate is the runtime that makes those failures *governed* instead of
//! emergent:
//!
//! - **Admission control** — a bounded queue ([`BoundedQueue`]) that
//!   says [`Rejected::QueueFull`] out loud instead of queueing without
//!   bound ([`queue`]).
//! - **Deadlines** — per-request budgets enforced *between transformer
//!   blocks* with a cooperative cancel token, so a doomed request stops
//!   mid-model and a cancelled pass never yields a partial result
//!   ([`engine`]).
//! - **Retries** — flagged (non-finite-health) attempts re-read the
//!   weights under seeded decorrelated-jitter backoff ([`retry`]).
//! - **Graceful degradation** — a circuit breaker over a sliding window
//!   of [`qt_quant::TensorHealth`] outcomes trips the quantized path to
//!   a BF16 reference path on pristine weights, then probes its way back
//!   ([`breaker`]).
//! - **Observability** — `serve.*` spans, instants, and metrics through
//!   qt-trace; crash-safe health snapshots through qt-ckpt ([`snapshot`]).
//!
//! Two drivers share the one engine code path: [`sim::run_sim`], a
//! single-threaded discrete-event simulation on a virtual clock whose
//! reports replay bit-exactly (and identically at any `QT_THREADS`), and
//! [`Server`], the same machinery on real OS threads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod breaker;
pub mod config;
pub mod engine;
pub mod queue;
pub mod request;
pub mod retry;
pub mod server;
pub mod shield;
pub mod sim;
pub mod snapshot;

pub use breaker::{BreakerPolicy, BreakerState, CircuitBreaker, Route, Transition};
pub use config::ServeConfig;
pub use engine::{Attempt, Engine, ProcessOutcome};
pub use queue::{BoundedQueue, Rejected};
pub use request::{OutcomeKind, Request, Response};
pub use retry::{Backoff, RetryPolicy};
pub use server::{Server, ServerStats};
pub use shield::{integrity_health, pristine_codes, pristine_codes_for_region, shield_model};
pub use sim::{run_sim, run_sim_observed, LoadSpec, ServeReport};
pub use snapshot::{HealthSnapshot, SnapshotError, SNAPSHOT_SCHEMA};
