//! Seeded decorrelated-jitter retry backoff.
//!
//! When a request's forward pass comes back flagged (non-finite health —
//! a bit upset hit the weights it read), the right move is usually to
//! just read the weights again: soft errors are transient, and a retry
//! sees an independent draw. But retries under overload synchronise into
//! waves unless they are jittered, so each delay is drawn from the
//! *decorrelated jitter* scheme (`delay = min(cap, uniform(base,
//! prev·3))`). Every per-request sequence comes from its own seeded RNG —
//! there is no wall clock anywhere in the decision path, so a serving
//! trace replays bit-exactly.

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Retry limits and backoff shape for flagged (unhealthy) attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Primary-path attempts before the request is forced onto the
    /// degraded path (minimum 1).
    pub max_attempts: u32,
    /// Lower bound of every backoff delay, µs.
    pub base_us: u64,
    /// Upper bound every delay is clamped to, µs.
    pub cap_us: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_us: 500,
            cap_us: 8_000,
        }
    }
}

/// One request's backoff sequence (decorrelated jitter, seeded).
#[derive(Debug, Clone)]
pub struct Backoff {
    policy: RetryPolicy,
    rng: StdRng,
    prev_us: u64,
}

impl Backoff {
    /// Sequence for one request; `seed` should be derived from the
    /// request id so replays are exact and requests are decorrelated
    /// from each other.
    pub fn new(policy: RetryPolicy, seed: u64) -> Self {
        Self {
            policy,
            rng: StdRng::seed_from_u64(seed),
            prev_us: policy.base_us,
        }
    }

    /// Draw the next delay: `min(cap, uniform(base, prev·3))`, never
    /// below `base` and never zero.
    pub fn next_delay_us(&mut self) -> u64 {
        let base = self.policy.base_us.max(1);
        let hi = self.prev_us.saturating_mul(3).max(base + 1);
        let d = self.rng.gen_range(base..hi).min(self.policy.cap_us.max(base));
        self.prev_us = d;
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_seeded_bounded_and_decorrelated() {
        let p = RetryPolicy {
            max_attempts: 3,
            base_us: 100,
            cap_us: 2_000,
        };
        let mut a = Backoff::new(p, 7);
        let mut b = Backoff::new(p, 7);
        let da: Vec<u64> = (0..16).map(|_| a.next_delay_us()).collect();
        let db: Vec<u64> = (0..16).map(|_| b.next_delay_us()).collect();
        assert_eq!(da, db, "same seed replays the same schedule");
        for &d in &da {
            assert!((p.base_us..=p.cap_us).contains(&d), "delay {d} out of bounds");
        }
        let mut c = Backoff::new(p, 8);
        let dc: Vec<u64> = (0..16).map(|_| c.next_delay_us()).collect();
        assert_ne!(da, dc, "different requests draw different schedules");
    }

    #[test]
    fn degenerate_policy_still_makes_progress() {
        // base == cap: every delay is exactly the cap; base 0 is floored.
        let mut b = Backoff::new(
            RetryPolicy {
                max_attempts: 1,
                base_us: 0,
                cap_us: 0,
            },
            1,
        );
        for _ in 0..4 {
            assert!(b.next_delay_us() >= 1);
        }
    }
}
