//! Crash-safe health snapshots.
//!
//! An edge deployment that reboots mid-incident should come back knowing
//! it was degraded — otherwise it re-learns the fault environment from
//! scratch, serving corrupt-prone traffic through the whole re-learning
//! window. The snapshot is a small JSON document (breaker state, trip
//! count, outcome counters) written with the same write-temp → fsync →
//! rename discipline as qt-ckpt checkpoints: a crash mid-write leaves
//! the previous snapshot intact, never a torn file.

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::sim::ServeReport;
use serde_json::{json, Value};
use std::path::Path;

/// Schema tag written into every snapshot.
pub const SNAPSHOT_SCHEMA: &str = "qt-serve/health/v1";

/// A durable point-in-time summary of serving health.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Breaker state at capture.
    pub breaker_state: BreakerState,
    /// Breaker trips so far.
    pub breaker_trips: u64,
    /// Unhealthy fraction of the breaker window at capture.
    pub unhealthy_rate: f64,
    /// Requests offered so far.
    pub offered: u64,
    /// Served from the primary path.
    pub served_primary: u64,
    /// Served degraded.
    pub served_degraded: u64,
    /// Shed at admission.
    pub shed_queue_full: u64,
    /// Deadline misses.
    pub deadline_miss: u64,
}

impl HealthSnapshot {
    /// Capture from a finished (or in-progress) report and its breaker.
    pub fn capture(report: &ServeReport, breaker: &CircuitBreaker) -> Self {
        Self {
            breaker_state: breaker.state(),
            breaker_trips: breaker.trips(),
            unhealthy_rate: breaker.unhealthy_rate(),
            offered: report.offered,
            served_primary: report.served_primary,
            served_degraded: report.served_degraded,
            shed_queue_full: report.shed_queue_full,
            deadline_miss: report.deadline_miss,
        }
    }

    /// The snapshot as JSON.
    pub fn to_json(&self) -> Value {
        json!({
            "schema": SNAPSHOT_SCHEMA,
            "breaker_state": self.breaker_state.name(),
            "breaker_trips": self.breaker_trips,
            "unhealthy_rate": self.unhealthy_rate,
            "offered": self.offered,
            "served_primary": self.served_primary,
            "served_degraded": self.served_degraded,
            "shed_queue_full": self.shed_queue_full,
            "deadline_miss": self.deadline_miss,
        })
    }

    /// Write atomically (temp file + fsync + rename): readers see either
    /// the old snapshot or the new one, never a torn file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        qt_ckpt::atomic_write_str(path, &serde_json::to_string(&self.to_json()).unwrap())
    }

    /// Read a snapshot back. `None` when the file is missing, is not
    /// JSON, or does not carry the expected schema tag.
    pub fn load(path: &Path) -> Option<Self> {
        let text = std::fs::read_to_string(path).ok()?;
        let v = serde_json::from_str(&text).ok()?;
        if v.get("schema")?.as_str()? != SNAPSHOT_SCHEMA {
            return None;
        }
        let state = match v.get("breaker_state")?.as_str()? {
            "closed" => BreakerState::Closed,
            "open" => BreakerState::Open,
            "half_open" => BreakerState::HalfOpen,
            _ => return None,
        };
        Some(Self {
            breaker_state: state,
            breaker_trips: v.get("breaker_trips")?.as_u64()?,
            unhealthy_rate: v.get("unhealthy_rate")?.as_f64()?,
            offered: v.get("offered")?.as_u64()?,
            served_primary: v.get("served_primary")?.as_u64()?,
            served_degraded: v.get("served_degraded")?.as_u64()?,
            shed_queue_full: v.get("shed_queue_full")?.as_u64()?,
            deadline_miss: v.get("deadline_miss")?.as_u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerPolicy;
    use qt_trace::LogHist;

    fn report() -> ServeReport {
        ServeReport {
            offered: 10,
            served_primary: 6,
            served_degraded: 2,
            shed_queue_full: 1,
            deadline_miss: 1,
            flagged_attempts: 3,
            bits_flipped: 5,
            breaker_trips: 0,
            transitions: Vec::new(),
            latency: LogHist::default(),
            queue_wait: LogHist::default(),
            max_queue_depth: 2,
            end_us: 123,
            responses: Vec::new(),
        }
    }

    #[test]
    fn snapshot_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("qt_serve_snap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("health.json");
        let breaker = CircuitBreaker::new(BreakerPolicy::default());
        let snap = HealthSnapshot::capture(&report(), &breaker);
        snap.save(&path).unwrap();
        let loaded = HealthSnapshot::load(&path).expect("snapshot loads");
        assert_eq!(loaded, snap);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_rejects_garbage_and_wrong_schema() {
        let dir = std::env::temp_dir().join("qt_serve_snap_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.json");
        assert!(HealthSnapshot::load(&missing).is_none());
        let torn = dir.join("torn.json");
        std::fs::write(&torn, "{\"schema\": \"qt-serve/heal").unwrap();
        assert!(HealthSnapshot::load(&torn).is_none());
        let wrong = dir.join("wrong.json");
        std::fs::write(&wrong, "{\"schema\": \"other/v9\"}").unwrap();
        assert!(HealthSnapshot::load(&wrong).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
