//! Crash-safe health snapshots.
//!
//! An edge deployment that reboots mid-incident should come back knowing
//! it was degraded — otherwise it re-learns the fault environment from
//! scratch, serving corrupt-prone traffic through the whole re-learning
//! window. The snapshot is a small JSON document (breaker state, trip
//! count, outcome counters) written with the same write-temp → fsync →
//! rename discipline as qt-ckpt checkpoints: a crash mid-write leaves
//! the previous snapshot intact, never a torn file.
//!
//! Loading distinguishes the two failure modes a recovering node must
//! treat differently: a **missing** snapshot is a normal first boot
//! (start fresh, silently), while a **corrupt** one means the durable
//! state the operator relies on was damaged — [`SnapshotError::Corrupt`]
//! carries the reason, and [`HealthSnapshot::load_traced`] bumps the
//! `serve.snapshot_corrupt` counter so the incident is never silent.

use crate::breaker::{BreakerState, CircuitBreaker};
use crate::sim::ServeReport;
use qt_trace::TraceHandle;
use serde_json::{json, Value};
use std::path::Path;

/// Schema tag written into every snapshot.
pub const SNAPSHOT_SCHEMA: &str = "qt-serve/health/v1";

/// Why a snapshot failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// No snapshot file exists at the path — a normal first boot.
    Missing,
    /// A file exists but is not a valid snapshot (torn write survived a
    /// non-atomic copy, bit rot, wrong schema). The payload says what
    /// was wrong; callers must surface this, never silently start fresh.
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Missing => write!(f, "snapshot missing"),
            SnapshotError::Corrupt(why) => write!(f, "snapshot corrupt: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A durable point-in-time summary of serving health.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Breaker state at capture.
    pub breaker_state: BreakerState,
    /// Breaker trips so far.
    pub breaker_trips: u64,
    /// Unhealthy fraction of the breaker window at capture.
    pub unhealthy_rate: f64,
    /// Requests offered so far.
    pub offered: u64,
    /// Served from the primary path.
    pub served_primary: u64,
    /// Served degraded.
    pub served_degraded: u64,
    /// Shed at admission.
    pub shed_queue_full: u64,
    /// Deadline misses.
    pub deadline_miss: u64,
}

impl HealthSnapshot {
    /// Capture from a finished (or in-progress) report and its breaker.
    pub fn capture(report: &ServeReport, breaker: &CircuitBreaker) -> Self {
        Self {
            breaker_state: breaker.state(),
            breaker_trips: breaker.trips(),
            unhealthy_rate: breaker.unhealthy_rate(),
            offered: report.offered,
            served_primary: report.served_primary,
            served_degraded: report.served_degraded,
            shed_queue_full: report.shed_queue_full,
            deadline_miss: report.deadline_miss,
        }
    }

    /// The snapshot as JSON.
    pub fn to_json(&self) -> Value {
        json!({
            "schema": SNAPSHOT_SCHEMA,
            "breaker_state": self.breaker_state.name(),
            "breaker_trips": self.breaker_trips,
            "unhealthy_rate": self.unhealthy_rate,
            "offered": self.offered,
            "served_primary": self.served_primary,
            "served_degraded": self.served_degraded,
            "shed_queue_full": self.shed_queue_full,
            "deadline_miss": self.deadline_miss,
        })
    }

    /// Write atomically (temp file + fsync + rename): readers see either
    /// the old snapshot or the new one, never a torn file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let text = serde_json::to_string(&self.to_json()).map_err(|e| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, format!("serialize: {e}"))
        })?;
        qt_ckpt::atomic_write_str(path, &text)
    }

    /// Read a snapshot back, distinguishing "nothing there" from
    /// "something there, but damaged".
    ///
    /// - [`SnapshotError::Missing`] — no file: a first boot, safe to
    ///   start fresh.
    /// - [`SnapshotError::Corrupt`] — unreadable, not JSON, wrong
    ///   schema, or missing fields: the durable record was damaged.
    ///   Callers deciding to proceed anyway must do so *loudly* (see
    ///   [`HealthSnapshot::load_traced`]).
    pub fn load(path: &Path) -> Result<Self, SnapshotError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(SnapshotError::Missing)
            }
            Err(e) => return Err(SnapshotError::Corrupt(format!("unreadable: {e}"))),
        };
        let v: Value = serde_json::from_str(&text)
            .map_err(|e| SnapshotError::Corrupt(format!("not JSON: {e}")))?;
        let schema = v
            .get("schema")
            .and_then(Value::as_str)
            .ok_or_else(|| SnapshotError::Corrupt("no schema tag".to_string()))?;
        if schema != SNAPSHOT_SCHEMA {
            return Err(SnapshotError::Corrupt(format!(
                "schema {schema:?}, expected {SNAPSHOT_SCHEMA:?}"
            )));
        }
        let state = match v.get("breaker_state").and_then(Value::as_str) {
            Some("closed") => BreakerState::Closed,
            Some("open") => BreakerState::Open,
            Some("half_open") => BreakerState::HalfOpen,
            other => {
                return Err(SnapshotError::Corrupt(format!(
                    "bad breaker_state {other:?}"
                )))
            }
        };
        let u64_field = |k: &str| -> Result<u64, SnapshotError> {
            v.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| SnapshotError::Corrupt(format!("missing/invalid field {k:?}")))
        };
        let unhealthy_rate = v
            .get("unhealthy_rate")
            .and_then(Value::as_f64)
            .ok_or_else(|| SnapshotError::Corrupt("missing/invalid field \"unhealthy_rate\"".to_string()))?;
        Ok(Self {
            breaker_state: state,
            breaker_trips: u64_field("breaker_trips")?,
            unhealthy_rate,
            offered: u64_field("offered")?,
            served_primary: u64_field("served_primary")?,
            served_degraded: u64_field("served_degraded")?,
            shed_queue_full: u64_field("shed_queue_full")?,
            deadline_miss: u64_field("deadline_miss")?,
        })
    }

    /// [`HealthSnapshot::load`] with the corruption path made loud: a
    /// corrupt snapshot bumps the `serve.snapshot_corrupt` counter on
    /// `trace` (when given) and logs the reason to stderr before the
    /// error is returned. Missing files stay silent — that is a normal
    /// first boot.
    pub fn load_traced(path: &Path, trace: Option<&TraceHandle>) -> Result<Self, SnapshotError> {
        let out = Self::load(path);
        if let Err(SnapshotError::Corrupt(why)) = &out {
            eprintln!(
                "[qt-serve] corrupt health snapshot at {}: {why}",
                path.display()
            );
            if let Some(t) = trace {
                t.borrow_mut()
                    .metrics_mut()
                    .counter_add("serve.snapshot_corrupt", &[], 1);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::breaker::BreakerPolicy;
    use qt_trace::LogHist;

    fn report() -> ServeReport {
        ServeReport {
            offered: 10,
            served_primary: 6,
            served_degraded: 2,
            shed_queue_full: 1,
            deadline_miss: 1,
            flagged_attempts: 3,
            bits_flipped: 5,
            breaker_trips: 0,
            transitions: Vec::new(),
            latency: LogHist::default(),
            queue_wait: LogHist::default(),
            max_queue_depth: 2,
            end_us: 123,
            responses: Vec::new(),
        }
    }

    #[test]
    fn snapshot_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("qt_serve_snap_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("health.json");
        let breaker = CircuitBreaker::new(BreakerPolicy::default());
        let snap = HealthSnapshot::capture(&report(), &breaker);
        snap.save(&path).unwrap();
        let loaded = HealthSnapshot::load(&path).expect("snapshot loads");
        assert_eq!(loaded, snap);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_and_corrupt_are_distinguished() {
        let dir = std::env::temp_dir().join("qt_serve_snap_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.json");
        assert_eq!(
            HealthSnapshot::load(&missing),
            Err(SnapshotError::Missing),
            "no file is a first boot, not corruption"
        );
        let torn = dir.join("torn.json");
        std::fs::write(&torn, "{\"schema\": \"qt-serve/heal").unwrap();
        assert!(matches!(
            HealthSnapshot::load(&torn),
            Err(SnapshotError::Corrupt(_))
        ));
        let wrong = dir.join("wrong.json");
        std::fs::write(&wrong, "{\"schema\": \"other/v9\"}").unwrap();
        assert!(matches!(
            HealthSnapshot::load(&wrong),
            Err(SnapshotError::Corrupt(_))
        ));
        // Valid schema but a counter missing: still corrupt, with the
        // field named in the reason.
        let partial = dir.join("partial.json");
        std::fs::write(
            &partial,
            format!("{{\"schema\": \"{SNAPSHOT_SCHEMA}\", \"breaker_state\": \"closed\"}}"),
        )
        .unwrap();
        match HealthSnapshot::load(&partial) {
            Err(SnapshotError::Corrupt(why)) => {
                assert!(
                    why.contains("missing/invalid field"),
                    "reason names the field: {why}"
                )
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_load_bumps_counter_on_trace() {
        let dir = std::env::temp_dir().join("qt_serve_snap_traced");
        std::fs::create_dir_all(&dir).unwrap();
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "not json at all").unwrap();
        let trace = qt_trace::TraceSession::new("snap-test").handle();
        assert!(HealthSnapshot::load_traced(&bad, Some(&trace)).is_err());
        assert_eq!(
            trace
                .borrow_mut()
                .metrics_mut()
                .counter_value("serve.snapshot_corrupt", &[]),
            1
        );
        // Missing file: silent, no counter.
        let gone = dir.join("gone.json");
        assert_eq!(
            HealthSnapshot::load_traced(&gone, Some(&trace)),
            Err(SnapshotError::Missing)
        );
        assert_eq!(
            trace
                .borrow_mut()
                .metrics_mut()
                .counter_value("serve.snapshot_corrupt", &[]),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
