//! The per-request execution engine: attempts, retries, deadline
//! enforcement, and health-driven degradation for one model.
//!
//! The engine owns the pristine master weights and two inference
//! schemes: the quantized *primary* path (8-bit storage — the thing
//! faults corrupt) and the *degraded* BF16 reference path, which reads
//! the uncorrupted master weights and therefore cannot be poisoned by
//! storage upsets. One call to [`Engine::process`] takes a request from
//! admission to a final [`Response`], threading a block-budget
//! [`CancelToken`] through every forward pass so a deadline aborts
//! mid-model rather than after the fact.
//!
//! The engine is deliberately clock-free: time is a parameter (virtual
//! µs), routing decisions come from caller-supplied closures, and all
//! randomness is derived from the request id. The deterministic
//! simulation driver and the threaded server are both thin shells
//! around this one code path.

use crate::breaker::Route;
use crate::config::ServeConfig;
use crate::request::{OutcomeKind, Request, Response};
use crate::retry::{Backoff, RetryPolicy};
use qt_autograd::Tape;
use qt_quant::{HealthWindow, QuantScheme, TensorHealth};
use qt_robust::{cell_seed, FaultSource};
use qt_transformer::{CancelToken, Model, ModelKind, QuantCtx, TokenBatch, TrainMode};

/// Hard cap on attempts per request beyond the retry policy, so a
/// deadline-less request against a pathological fault environment still
/// terminates (it degrades, and if even that is flagged, it misses).
const ATTEMPT_HARD_CAP: u32 = 16;

/// What one forward attempt produced.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// `false` when the pass was cancelled by the block budget.
    pub completed: bool,
    /// Argmax over the logits (completed attempts only).
    pub label: Option<usize>,
    /// Aggregate quantization health of the pass, including a final
    /// non-finite scan of the logits themselves.
    pub health: TensorHealth,
    /// Transformer blocks actually executed.
    pub blocks: u64,
    /// Bits the fault source flipped into this attempt's weight read.
    pub bits_flipped: u64,
}

/// Everything [`Engine::process`] learned about one request.
#[derive(Debug, Clone)]
pub struct ProcessOutcome {
    /// The final response.
    pub response: Response,
    /// Blocks executed across all attempts (the compute actually spent).
    pub blocks: u64,
    /// Virtual time spent in retry backoff, µs.
    pub backoff_us: u64,
    /// Total service time (compute + backoff), µs.
    pub service_us: u64,
    /// Bits flipped into this request's weight reads across attempts.
    pub bits_flipped: u64,
}

/// The serving engine for one model.
pub struct Engine {
    model: Model,
    primary: QuantScheme,
    fallback: QuantScheme,
    fault: Box<dyn FaultSource + Send + Sync>,
    retry: RetryPolicy,
    retry_seed: u64,
    per_block_us: u64,
}

impl Engine {
    /// Engine serving `model` under `cfg`, reading weights through
    /// `fault` (use [`qt_robust::NoFaults`] for healthy hardware).
    pub fn new(model: Model, cfg: &ServeConfig, fault: Box<dyn FaultSource + Send + Sync>) -> Self {
        let cfg = cfg.clone().normalized();
        Self {
            model,
            primary: QuantScheme::uniform(cfg.primary),
            fallback: QuantScheme::bf16(),
            fault,
            retry: cfg.retry,
            retry_seed: cfg.retry_seed,
            per_block_us: cfg.per_block_us,
        }
    }

    /// The served model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Virtual cost of one transformer block, µs.
    pub fn per_block_us(&self) -> u64 {
        self.per_block_us
    }

    /// Virtual cost of one complete forward pass, µs.
    pub fn full_pass_us(&self) -> u64 {
        self.model.blocks_per_forward() * self.per_block_us
    }

    /// Run one forward attempt. `primary` selects the quantized path
    /// (with fault injection) or the degraded reference path (pristine
    /// weights); `block_budget` is enforced cooperatively between
    /// transformer blocks via a [`CancelToken`].
    pub fn attempt(
        &self,
        req: &Request,
        attempt_idx: u32,
        primary: bool,
        block_budget: u64,
    ) -> Attempt {
        let (faulted, bits_flipped) = if primary {
            match self.fault.corrupt_for_request(&self.model, req.id, attempt_idx) {
                Some((m, r)) => (Some(m), r.bits_flipped),
                None => (None, 0),
            }
        } else {
            (None, 0)
        };
        let model = faulted.as_ref().unwrap_or(&self.model);
        let scheme = if primary { self.primary } else { self.fallback };
        let token = CancelToken::with_block_budget(block_budget);
        let qctx = QuantCtx::inference(scheme).with_cancel(token.clone());
        let mut tape = Tape::new();
        let batch = TokenBatch::dense(req.tokens.clone(), 1, req.tokens.len());
        let dec = (model.cfg.kind == ModelKind::EncDec).then(|| batch.clone());
        match model.try_forward(&mut tape, &qctx, &batch, dec.as_ref(), TrainMode::Frozen) {
            Ok(out) => {
                let mut health = TensorHealth::default();
                for (_, h) in qctx.health_report() {
                    health.merge(&h);
                }
                let logits = tape.value(out.logits).data();
                // Belt and braces: even if every cut site were fused
                // away, a non-finite logit must flag the response.
                let bad_logits = logits.iter().filter(|x| !x.is_finite()).count() as u64;
                health.elements += logits.len() as u64;
                health.nonfinite_out += bad_logits;
                let label = logits
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0);
                Attempt {
                    completed: true,
                    label: Some(label),
                    health,
                    blocks: model.blocks_per_forward(),
                    bits_flipped,
                }
            }
            Err(cancelled) => Attempt {
                completed: false,
                label: None,
                health: TensorHealth::default(),
                blocks: cancelled.blocks_completed,
                bits_flipped,
            },
        }
    }

    /// Take `req` from service start to a final response.
    ///
    /// `start_us` is when a worker picked the request up (virtual clock).
    /// `route` is consulted before each attempt (the circuit breaker);
    /// `record` receives the health of every *primary* attempt so the
    /// breaker sees exactly what the quantized path produced. Both take
    /// the current virtual time.
    ///
    /// Invariants, by construction:
    /// - an attempt whose health carries non-finite traffic is never the
    ///   served response — it is retried with backoff, degraded, or the
    ///   request misses;
    /// - a cancelled forward contributes no partial result — the request
    ///   misses its deadline;
    /// - attempts after `retry.max_attempts` are forced onto the
    ///   degraded path regardless of breaker state.
    pub fn process(
        &self,
        req: &Request,
        start_us: u64,
        mut route: impl FnMut(u64) -> Route,
        mut record: impl FnMut(&TensorHealth, u64),
    ) -> ProcessOutcome {
        let mut blocks = 0u64;
        let mut backoff_us = 0u64;
        let mut bits_flipped = 0u64;
        let mut flagged = 0u32;
        let mut backoff = Backoff::new(
            self.retry,
            cell_seed(self.retry_seed, req.id as usize, 0, 0),
        );
        let mut attempt_idx = 0u32;
        loop {
            let now = start_us + blocks * self.per_block_us + backoff_us;
            let budget = if req.deadline_us == Request::NO_DEADLINE {
                u64::MAX
            } else {
                req.deadline_us.saturating_sub(now) / self.per_block_us
            };
            if budget == 0 || attempt_idx >= ATTEMPT_HARD_CAP {
                return self.finish(
                    req,
                    OutcomeKind::DeadlineMiss,
                    None,
                    attempt_idx,
                    flagged,
                    now,
                    blocks,
                    backoff_us,
                    bits_flipped,
                );
            }
            let primary =
                attempt_idx < self.retry.max_attempts.max(1) && route(now) == Route::Primary;
            let a = self.attempt(req, attempt_idx, primary, budget);
            blocks += a.blocks;
            bits_flipped += a.bits_flipped;
            let after = start_us + blocks * self.per_block_us + backoff_us;
            if primary && a.completed {
                record(&a.health, after);
            }
            if !a.completed {
                // The block budget ran out mid-pass: no partial result
                // exists, the request misses.
                return self.finish(
                    req,
                    OutcomeKind::DeadlineMiss,
                    None,
                    attempt_idx + 1,
                    flagged,
                    after,
                    blocks,
                    backoff_us,
                    bits_flipped,
                );
            }
            if HealthWindow::is_unhealthy(&a.health) {
                // Flagged: this output never leaves the engine.
                flagged += 1;
                attempt_idx += 1;
                backoff_us += backoff.next_delay_us();
                continue;
            }
            let outcome = if primary {
                OutcomeKind::ServedPrimary
            } else {
                OutcomeKind::ServedDegraded
            };
            return self.finish(
                req,
                outcome,
                a.label,
                attempt_idx + 1,
                flagged,
                after,
                blocks,
                backoff_us,
                bits_flipped,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        req: &Request,
        outcome: OutcomeKind,
        label: Option<usize>,
        attempts: u32,
        flagged: u32,
        finish_us: u64,
        blocks: u64,
        backoff_us: u64,
        bits_flipped: u64,
    ) -> ProcessOutcome {
        ProcessOutcome {
            response: Response {
                id: req.id,
                outcome,
                label,
                attempts,
                flagged,
                finish_us,
                latency_us: finish_us.saturating_sub(req.arrival_us),
            },
            blocks,
            backoff_us,
            service_us: blocks * self.per_block_us + backoff_us,
            bits_flipped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qt_quant::ElemFormat;
    use qt_robust::{BerFaultSource, CodeFormat, NoFaults};
    use qt_transformer::{TaskHead, TransformerConfig};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn tiny_model() -> Model {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = TransformerConfig::mobilebert_tiny_sim();
        Model::new(cfg, TaskHead::Classify(2), &mut rng)
    }

    fn request(id: u64, model: &Model) -> Request {
        let mut rng = StdRng::seed_from_u64(100 + id);
        let tokens = (0..8).map(|_| rng.gen_range(0..model.cfg.vocab)).collect();
        Request::new(id, tokens)
    }

    #[test]
    fn healthy_request_is_served_primary_in_one_attempt() {
        let model = tiny_model();
        let cfg = ServeConfig::default();
        let engine = Engine::new(model.clone(), &cfg, Box::new(NoFaults));
        let req = request(0, &model);
        let out = engine.process(&req, 0, |_| Route::Primary, |_, _| {});
        assert_eq!(out.response.outcome, OutcomeKind::ServedPrimary);
        assert_eq!(out.response.attempts, 1);
        assert_eq!(out.response.flagged, 0);
        assert!(out.response.label.is_some());
        assert_eq!(out.blocks, model.blocks_per_forward());
        assert_eq!(out.service_us, engine.full_pass_us());
    }

    #[test]
    fn deadline_shorter_than_one_pass_misses_without_partial_result() {
        let model = tiny_model();
        let cfg = ServeConfig::default();
        let engine = Engine::new(model.clone(), &cfg, Box::new(NoFaults));
        let blocks = model.blocks_per_forward();
        // Budget for exactly one block less than a full pass.
        let req = request(1, &model).with_deadline((blocks - 1) * cfg.per_block_us);
        let out = engine.process(&req, 0, |_| Route::Primary, |_, _| {});
        assert_eq!(out.response.outcome, OutcomeKind::DeadlineMiss);
        assert!(out.response.label.is_none(), "no partial result");
        assert_eq!(out.blocks, blocks - 1, "cancelled between blocks");
    }

    #[test]
    fn degraded_route_serves_from_pristine_weights() {
        let model = tiny_model();
        let cfg = ServeConfig::default();
        // A brutal fault source: the primary path would be corrupted,
        // but routing is Degraded so it is never consulted.
        let codec = CodeFormat::new(ElemFormat::P8E1).unwrap();
        let fault = BerFaultSource::new(3, codec, 0.05);
        let engine = Engine::new(model.clone(), &cfg, Box::new(fault));
        let req = request(2, &model);
        let mut recorded = 0;
        let out = engine.process(&req, 0, |_| Route::Degraded, |_, _| recorded += 1);
        assert_eq!(out.response.outcome, OutcomeKind::ServedDegraded);
        assert_eq!(out.bits_flipped, 0, "degraded path reads master weights");
        assert_eq!(recorded, 0, "degraded attempts are not breaker samples");
    }

    #[test]
    fn flagged_attempts_retry_then_degrade_and_never_serve_unhealthy() {
        let model = tiny_model();
        let mut cfg = ServeConfig::default();
        cfg.retry.max_attempts = 2;
        // BER high enough that essentially every primary read is flagged.
        let codec = CodeFormat::new(ElemFormat::P8E1).unwrap();
        let fault = BerFaultSource::new(5, codec, 0.05);
        let engine = Engine::new(model.clone(), &cfg, Box::new(fault));
        let mut served_any_unhealthy = false;
        for id in 0..6u64 {
            let req = request(10 + id, &model);
            let out = engine.process(&req, 0, |_| Route::Primary, |_, _| {});
            assert!(out.response.outcome.is_served());
            if out.response.flagged > 0 {
                // Retried at least once; the served attempt must have
                // been clean (degraded or a lucky clean re-read).
                served_any_unhealthy = false;
            }
            assert!(out.response.attempts <= cfg.retry.max_attempts + 1);
        }
        assert!(!served_any_unhealthy);
    }

    #[test]
    fn process_is_deterministic_for_a_given_request() {
        let model = tiny_model();
        let cfg = ServeConfig::default();
        let codec = CodeFormat::new(ElemFormat::P8E1).unwrap();
        let engine = Engine::new(
            model.clone(),
            &cfg,
            Box::new(BerFaultSource::new(7, codec, 1e-3)),
        );
        let req = request(3, &model).with_deadline(500_000);
        let a = engine.process(&req, 0, |_| Route::Primary, |_, _| {});
        let b = engine.process(&req, 0, |_| Route::Primary, |_, _| {});
        assert_eq!(a.response, b.response);
        assert_eq!(a.bits_flipped, b.bits_flipped);
        assert_eq!(a.service_us, b.service_us);
    }
}
