//! Serving runtime configuration.

use crate::breaker::BreakerPolicy;
use crate::retry::RetryPolicy;
use qt_quant::ElemFormat;

/// Everything the runtime needs to know that is not the model itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Worker count: simulated service resources in the deterministic
    /// driver, real OS threads in [`crate::Server`]. Independent of the
    /// `QT_THREADS` kernel pool — a worker *uses* the pool, it is not
    /// sized by it.
    pub workers: usize,
    /// Admission-queue capacity (requests shed beyond it).
    pub queue_cap: usize,
    /// Virtual service cost of one transformer block, µs. Deadline
    /// budgets are converted to block credits through this, so deadline
    /// enforcement is exact and deterministic.
    pub per_block_us: u64,
    /// Element format of the primary quantized path.
    pub primary: ElemFormat,
    /// Retry limits and backoff shape for flagged attempts.
    pub retry: RetryPolicy,
    /// Circuit-breaker policy over primary-path health.
    pub breaker: BreakerPolicy,
    /// Master seed for retry jitter streams (per-request streams are
    /// derived from it, mixed with the request id).
    pub retry_seed: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            queue_cap: 8,
            per_block_us: 1_000,
            primary: ElemFormat::P8E1,
            retry: RetryPolicy::default(),
            breaker: BreakerPolicy::default(),
            retry_seed: 0x5e_17e5,
        }
    }
}

impl ServeConfig {
    /// Clamp the structural knobs to their minimums (≥ 1 worker, ≥ 1
    /// queue slot, ≥ 1 µs per block).
    pub fn normalized(mut self) -> Self {
        self.workers = self.workers.max(1);
        self.queue_cap = self.queue_cap.max(1);
        self.per_block_us = self.per_block_us.max(1);
        self
    }
}
