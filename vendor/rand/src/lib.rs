//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container cannot reach crates.io, so this crate implements
//! the pieces of `rand` 0.8 the workspace actually uses: [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`].
//!
//! `StdRng` here is xoshiro256** seeded via SplitMix64 — deterministic
//! and stable across platforms, but **not** bit-compatible with upstream
//! `StdRng` (ChaCha12). Every consumer in this workspace seeds explicitly
//! with `seed_from_u64` and only relies on run-to-run determinism, which
//! this preserves.

#![allow(clippy::all)]

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Deterministically derive a full-state seed from one `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value uniformly over `T`'s canonical distribution
    /// (floats: `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`a..b` or `a..=b`).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.gen::<f64>()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits → [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Ranges usable with [`Rng::gen_range`].
///
/// Single blanket impls over [`SampleUniform`] (like upstream rand), so
/// integer-literal ranges unify with the surrounding expression's type
/// instead of falling back to `i32`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// Element types with a uniform sampler.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (or `[lo, hi]` when `inclusive`).
    fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range");
                let v = (rng.next_u64() as u128 % span as u128) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample empty range");
                } else {
                    assert!(lo < hi, "cannot sample empty range");
                }
                let u = <$t as Standard>::sample(rng);
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Named RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for upstream's
    /// ChaCha12-based `StdRng`; same API, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_splitmix(mut seed: u64) -> Self {
            let mut next = || {
                seed = seed.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            Self::from_splitmix(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling/choosing (subset of upstream `SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
            let n: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&n));
            let u: usize = rng.gen_range(0..8);
            assert!(u < 8);
        }
    }

    #[test]
    fn gen_bool_rates() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted); // astronomically unlikely to be identity
    }
}
