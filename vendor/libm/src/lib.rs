//! Offline stand-in for the `libm` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! provides the (small) subset of `libm` the workspace uses as thin
//! wrappers over `std` float math. `std`'s implementations call the
//! platform libm, so results match the real crate to the last ulp for
//! every function used here.

#![allow(missing_docs)]

#![allow(clippy::all)]

#[inline]
pub fn ldexp(mut x: f64, n: i32) -> f64 {
    // std has no ldexp; scale by exact powers of two, stepping in normal-
    // range chunks so extreme exponents overflow/underflow like libm.
    let mut n = n as i64;
    while n > 1023 {
        x *= pow2(1023);
        n -= 1023;
        if !x.is_finite() {
            return x;
        }
    }
    while n < -1074 {
        x *= pow2(-1074);
        n += 1074;
        if x == 0.0 {
            return x;
        }
    }
    x * pow2(n as i32)
}

/// Exact power of two as f64 for exponents in the normal/subnormal range.
#[inline]
fn pow2(n: i32) -> f64 {
    if n >= -1022 {
        f64::from_bits(((n + 1023) as u64) << 52)
    } else if n >= -1074 {
        f64::from_bits(1u64 << (n + 1074))
    } else if n > 1023 {
        f64::INFINITY
    } else {
        0.0
    }
}

#[inline]
pub fn exp(x: f64) -> f64 {
    x.exp()
}

#[inline]
pub fn exp2(x: f64) -> f64 {
    x.exp2()
}

#[inline]
pub fn expf(x: f32) -> f32 {
    x.exp()
}

#[inline]
pub fn log(x: f64) -> f64 {
    x.ln()
}

#[inline]
pub fn logf(x: f32) -> f32 {
    x.ln()
}

#[inline]
pub fn log2(x: f64) -> f64 {
    x.log2()
}

#[inline]
pub fn log2f(x: f32) -> f32 {
    x.log2()
}

#[inline]
pub fn log10(x: f64) -> f64 {
    x.log10()
}

#[inline]
pub fn sqrt(x: f64) -> f64 {
    x.sqrt()
}

#[inline]
pub fn sqrtf(x: f32) -> f32 {
    x.sqrt()
}

#[inline]
pub fn floor(x: f64) -> f64 {
    x.floor()
}

#[inline]
pub fn floorf(x: f32) -> f32 {
    x.floor()
}

#[inline]
pub fn rint(x: f64) -> f64 {
    // round-half-to-even, matching libm's rint under the default FP mode
    let r = x.round();
    if (x - x.trunc()).abs() == 0.5 && r % 2.0 != 0.0 {
        r - x.signum()
    } else {
        r
    }
}

#[inline]
pub fn sin(x: f64) -> f64 {
    x.sin()
}

#[inline]
pub fn cos(x: f64) -> f64 {
    x.cos()
}

#[inline]
pub fn tanhf(x: f32) -> f32 {
    x.tanh()
}

#[inline]
pub fn pow(x: f64, y: f64) -> f64 {
    x.powf(y)
}

#[inline]
pub fn powf(x: f32, y: f32) -> f32 {
    x.powf(y)
}

#[inline]
pub fn fabs(x: f64) -> f64 {
    x.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ldexp_exact_powers() {
        assert_eq!(ldexp(1.0, 12), 4096.0);
        assert_eq!(ldexp(1.0, -12), 1.0 / 4096.0);
        assert_eq!(ldexp(1.5, 1), 3.0);
        assert_eq!(ldexp(1.0, -1074), f64::from_bits(1)); // smallest subnormal
        assert_eq!(ldexp(1.0, -1075), 0.0);
        assert_eq!(ldexp(1.0, 1024), f64::INFINITY);
    }

    #[test]
    fn rint_ties_to_even() {
        assert_eq!(rint(0.5), 0.0);
        assert_eq!(rint(1.5), 2.0);
        assert_eq!(rint(2.5), 2.0);
        assert_eq!(rint(-0.5), 0.0);
        assert_eq!(rint(1.2), 1.0);
    }
}
