//! Offline stand-in for `criterion`.
//!
//! Provides the `bench_function` API surface the workspace's benches use,
//! backed by a simple median-of-samples timer instead of criterion's
//! statistical machinery. Good enough to smoke-run `cargo bench` and
//! compare orders of magnitude; not a replacement for real criterion
//! numbers.

#![allow(clippy::all)]

use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f` over a batch of iterations.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Minimal benchmark driver.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Warm-up budget before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Total measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Run one benchmark and print its median time per iteration.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        // Warm-up + calibration: find an iteration count whose batch takes
        // roughly measurement/sample_size.
        let mut iters = 1u64;
        let per_batch = self.measurement.as_secs_f64() / self.sample_size as f64;
        let warm_deadline = Instant::now() + self.warm_up;
        let mut batch_time;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            batch_time = b.elapsed.as_secs_f64().max(1e-9);
            if batch_time >= per_batch || Instant::now() >= warm_deadline {
                break;
            }
            let grow = (per_batch / batch_time).min(100.0).max(2.0);
            iters = ((iters as f64) * grow) as u64;
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        println!("{name:<40} {:>12}/iter  ({} iters/sample)", fmt_time(median), iters);
        self
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Group benchmark targets under one entry function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
