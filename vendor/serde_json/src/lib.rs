//! Offline stand-in for `serde_json`.
//!
//! Implements the subset the workspace uses: the [`Value`] tree, the
//! [`json!`] macro (object/array/expression forms), [`to_string_pretty`],
//! [`from_str`], and `value["key"][0]` indexing. No derive support — the
//! workspace builds `Value`s explicitly.

#![allow(clippy::all)]

use std::collections::BTreeMap;
use std::fmt;

/// A parsed/constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with sorted keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// String contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as u64, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array contents, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object contents, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Member lookup returning `None` on kind/key mismatch.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.get(key)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Object(o) => o.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        static NULL: Value = Value::Null;
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&String> for Value {
    fn from(s: &String) -> Self {
        Value::String(s.clone())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

macro_rules! from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Self { Value::Number(n as f64) }
        }
    )*};
}
from_num!(f32, f64, i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&Vec<T>> for Value {
    fn from(v: &Vec<T>) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

/// Build a [`Value`] with JSON-ish syntax.
///
/// Subset of upstream: object literals with literal keys and expression
/// values, array literals of expressions, and bare expressions (anything
/// with `Into<Value>`). Nest objects by nesting `json!` calls.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::Value::from($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut m = ::std::collections::BTreeMap::new();
        $( m.insert(($key).to_string(), $crate::Value::from($val)); )*
        $crate::Value::Object(m)
    }};
    ($other:expr) => { $crate::Value::from($other) };
}

fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn fmt_number(n: f64) -> String {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; mirror serde_json, which emits null.
        "null".to_string()
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn write_value(v: &Value, indent: usize, pretty: bool, out: &mut String) {
    let pad = |n: usize| "  ".repeat(n);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&fmt_number(*n)),
        Value::String(s) => escape(s, out),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, e) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&pad(indent + 1));
                }
                write_value(e, indent + 1, pretty, out);
            }
            if pretty {
                out.push('\n');
                out.push_str(&pad(indent));
            }
            out.push(']');
        }
        Value::Object(o) => {
            if o.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, e)) in o.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    out.push_str(&pad(indent + 1));
                }
                escape(k, out);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(e, indent + 1, pretty, out);
            }
            if pretty {
                out.push('\n');
                out.push_str(&pad(indent));
            }
            out.push('}');
        }
    }
}

/// Serialize compactly.
pub fn to_string(v: &Value) -> Result<String, Error> {
    let mut s = String::new();
    write_value(v, 0, false, &mut s);
    Ok(s)
}

/// Serialize with two-space indentation.
pub fn to_string_pretty(v: &Value) -> Result<String, Error> {
    let mut s = String::new();
    write_value(v, 0, true, &mut s);
    Ok(s)
}

/// Parse/serialize error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

/// Parse a JSON document into a [`Value`].
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(Error::new("bad \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                    .map_err(|_| Error::new("bad \\u escape"))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Copy the full UTF-8 sequence starting here.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len()
                        && (self.bytes[self.pos] & 0xC0) == 0x80
                    {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid utf8"))?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| Error::new(format!("bad number at byte {start}")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            map.insert(key, self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_pretty() {
        let v = json!({
            "title": "T",
            "rows": [["a", "b"], ["c", "d"]],
            "n": 3,
            "ok": true,
        });
        let s = to_string_pretty(&v).unwrap();
        let back = from_str(&s).unwrap();
        assert_eq!(v, back);
        assert_eq!(back["rows"][1][0], "c");
        assert_eq!(back["n"], 3.0);
    }

    #[test]
    fn parses_escapes_and_numbers() {
        let v = from_str(r#"{"s": "a\nbA", "x": -1.5e2}"#).unwrap();
        assert_eq!(v["s"], "a\nbA");
        assert_eq!(v["x"].as_f64(), Some(-150.0));
    }

    #[test]
    fn missing_keys_are_null() {
        let v = json!({"a": 1});
        assert_eq!(v["nope"], Value::Null);
        assert_eq!(v["nope"][3], Value::Null);
    }
}
