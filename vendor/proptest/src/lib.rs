//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro over `arg in strategy` bindings, range strategies
//! for floats/integers, `prop::collection::vec`, and the `prop_assert*`
//! macros. Each property runs [`CASES`] deterministic cases seeded from
//! the test name — no shrinking, no persistence files.

#![allow(clippy::all)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cases generated per property.
pub const CASES: usize = 192;

/// Deterministic per-test RNG.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from a test name (FNV-1a hash), so every property gets a
    /// stable, distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self(StdRng::seed_from_u64(h))
    }
}

/// A value generator.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.start..self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

float_strategy!(f32, f64);

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.start..self.end)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        elem: S,
        lo: usize,
        hi: usize,
    }

    /// `vec(elem, 1..24)`: vectors of 1..24 elements.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            lo: len.start,
            hi: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.0.gen_range(self.lo..self.hi.max(self.lo + 1));
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The common imports: `proptest!`, `prop_assert*`, [`Strategy`], and the
/// crate itself as `prop` (for `prop::collection::vec`).
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Define property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running [`CASES`](crate::CASES) deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($( #[$meta:meta] fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            #[$meta]
            fn $name() {
                let mut __rng = $crate::TestRng::deterministic(stringify!($name));
                for __case in 0..$crate::CASES {
                    $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                    $body
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn floats_stay_in_range(x in -5.0f64..5.0) {
            prop_assert!((-5.0..5.0).contains(&x));
        }

        #[test]
        fn vec_lengths_respected(xs in prop::collection::vec(0f64..1.0, 1..24)) {
            prop_assert!(!xs.is_empty() && xs.len() < 24);
            prop_assert!(xs.iter().all(|&v| (0.0..1.0).contains(&v)));
        }

        #[test]
        fn ints_inclusive(e in -23i32..23) {
            prop_assert!((-23..23).contains(&e));
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        let s = -1.0f64..1.0;
        for _ in 0..10 {
            assert_eq!(
                crate::Strategy::generate(&s, &mut a),
                crate::Strategy::generate(&s, &mut b)
            );
        }
    }
}
