//! Robustness integration: numerical-health counters surfaced through the
//! quantization context during real inference, non-finite guard policies
//! containing NaN-poisoned weights, dynamic loss scaling riding out
//! injected gradient overflow, and the seeded fault campaign end-to-end.

use qt_datagen::{ClassifyKind, ClassifyTask};
use qt_quant::{ElemFormat, NonFinitePolicy, QuantScheme, ScalingMode};
use qt_robust::{run_campaign, BitFlipInjector, CampaignConfig, CodeFormat};
use qt_train::{evaluate_classify, AdamW, LossScaler, Trainer};
use qt_transformer::{Model, QuantCtx, TaskHead, TrainMode, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};

fn tiny_cfg() -> TransformerConfig {
    let mut cfg = TransformerConfig::mobilebert_tiny_sim();
    cfg.layers = 1;
    cfg
}

fn eval_batches(task: &ClassifyTask, n: usize, seed: u64) -> Vec<(qt_transformer::TokenBatch, Vec<usize>)> {
    task.dataset(n, seed).chunks(16).map(|c| task.batch(c)).collect()
}

#[test]
fn qctx_health_counters_observable_during_inference() {
    let cfg = tiny_cfg();
    let task = ClassifyTask::new(ClassifyKind::Sst2, cfg.vocab, 16);
    let mut rng = StdRng::seed_from_u64(21);
    let model = Model::new(cfg, TaskHead::Classify(2), &mut rng);
    let ctx = QuantCtx::inference(QuantScheme::posit8());

    let _ = evaluate_classify(&model, &ctx, &eval_batches(&task, 32, 5));

    let report = ctx.health_report();
    assert!(!report.is_empty(), "quantized cuts must record health");
    let total = ctx.health_total();
    assert!(total.elements > 0);
    assert_eq!(
        total.elements,
        report.iter().map(|(_, h)| h.elements).sum::<u64>()
    );
    // A fresh random model on finite data has no non-finite traffic.
    assert_eq!(total.nonfinite_in, 0);
    assert_eq!(total.nonfinite_out, 0);
    // Per-site lookup mirrors the report.
    let (site, h) = &report[0];
    assert_eq!(ctx.health_of(site), Some(*h));

    ctx.reset_health();
    assert_eq!(ctx.health_total().elements, 0);
}

#[test]
fn nonfinite_guard_contains_nan_poisoned_weights() {
    let cfg = tiny_cfg();
    let task = ClassifyTask::new(ClassifyKind::Sst2, cfg.vocab, 16);
    let mut rng = StdRng::seed_from_u64(22);
    let mut model = Model::new(cfg, TaskHead::Classify(2), &mut rng);
    // Poison one early weight: NaN reaches the quantization cuts.
    let name = model
        .params
        .names()
        .into_iter()
        .find(|n| n.ends_with(".w"))
        .expect("model has a weight matrix");
    model.params.get_mut(&name).data_mut()[0] = f32::NAN;
    let batches = eval_batches(&task, 32, 6);

    // Propagating scheme observes the poison at the cuts.
    let ctx = QuantCtx::inference(QuantScheme::posit8());
    let _ = evaluate_classify(&model, &ctx, &batches);
    assert!(
        ctx.health_total().nonfinite_in > 0,
        "NaN weights must show up in the health counters"
    );

    // A saturating guard still observes it, but clamps the poison so the
    // quantized values leaving every cut are finite.
    let guarded = QuantCtx::inference(
        QuantScheme::posit8().with_nonfinite(NonFinitePolicy::Saturate),
    );
    let acc = evaluate_classify(&model, &guarded, &batches);
    let total = guarded.health_total();
    assert!(total.nonfinite_in > 0);
    assert_eq!(
        total.nonfinite_out, 0,
        "saturating guard must emit only finite quantized values"
    );
    assert!((0.0..=100.0).contains(&acc));
}

#[test]
fn dynamic_scaling_completes_where_static_scale_diverges() {
    // Injected overflow: an infinite static loss scale makes every
    // backward non-finite, so a plain trainer never applies a step.
    let cfg = tiny_cfg();
    let task = ClassifyTask::new(ClassifyKind::Sst2, cfg.vocab, 16);
    let data = task.dataset(12 * 8, 7);
    let scheme = QuantScheme::posit8().with_scaling(ScalingMode::LossScale(f32::INFINITY));

    let run = |scaler: Option<LossScaler>| {
        let mut rng = StdRng::seed_from_u64(23);
        let model = Model::new(tiny_cfg(), TaskHead::Classify(2), &mut rng);
        let mut trainer = Trainer::new(
            model,
            QuantCtx::training(scheme),
            TrainMode::Full,
            AdamW::new(3e-3),
        );
        if let Some(s) = scaler {
            trainer = trainer.with_dynamic_scaling(s);
        }
        for chunk in data.chunks(8) {
            let (batch, labels) = task.batch(chunk);
            trainer.step_classify(&batch, &labels);
        }
        (trainer.steps(), trainer.skipped())
    };

    let (static_steps, static_skipped) = run(None);
    assert_eq!(static_steps, 0, "static infinite scale must diverge");
    assert!(static_skipped > 0);

    let (dyn_steps, dyn_skipped) = run(Some(
        LossScaler::new(f32::INFINITY).with_backoff(1.0 / 65536.0),
    ));
    assert!(dyn_skipped > 0, "dynamic scaler must first hit the overflow");
    assert!(
        dyn_steps > 0,
        "dynamic scaler must back off and complete the run"
    );
}

#[test]
fn seeded_fault_campaign_reproduces_through_full_inference() {
    let cfg = tiny_cfg();
    let task = ClassifyTask::new(ClassifyKind::Sst2, cfg.vocab, 16);
    let mut rng = StdRng::seed_from_u64(24);
    let model = Model::new(cfg, TaskHead::Classify(2), &mut rng);
    let batches = eval_batches(&task, 32, 8);

    let campaign = CampaignConfig {
        seed: 1234,
        formats: vec![ElemFormat::P8E1, ElemFormat::E5M2],
        flip_rates: vec![2e-3],
        trials: 2,
    };
    let eval = |m: &Model, fmt: ElemFormat| {
        let ctx = QuantCtx::inference(
            QuantScheme::uniform(fmt).with_nonfinite(NonFinitePolicy::Saturate),
        );
        evaluate_classify(m, &ctx, &batches)
    };
    let a = run_campaign(&campaign, &model, eval);
    let b = run_campaign(&campaign, &model, eval);
    assert_eq!(a, b, "same seed must reproduce the full table");
    assert_eq!(a.len(), 2);
    for cell in &a {
        assert!(cell.report.bits_flipped > 0);
        assert!((0.0..=100.0).contains(&cell.corrupted));
    }

    // The injector reports which corrupted words a free non-finite check
    // catches; recompute one cell by hand to cross-check the plumbing.
    let codec = CodeFormat::new(ElemFormat::P8E1).unwrap();
    let mut inj = BitFlipInjector::new(77);
    let t = model.params.get(&model.params.names()[0]).clone();
    let (_, r1) = inj.corrupt_tensor(&t, codec, 2e-3);
    let mut inj2 = BitFlipInjector::new(77);
    let (_, r2) = inj2.corrupt_tensor(&t, codec, 2e-3);
    assert_eq!(r1, r2);
}
