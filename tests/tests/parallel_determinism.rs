//! The qt-par determinism contract, cross-crate: every parallelized
//! kernel must produce bitwise-identical results at every thread count,
//! because chunk boundaries and accumulation order depend only on the
//! input shape — never on the pool size.

use proptest::prelude::*;
use qt_posit::UnderflowPolicy;
use qt_quant::{
    matmul_codes, matmul_product_lut, ElemFormat, FakeQuant, PackedCodesB, PackedQuantB,
    ProductLut,
};
use qt_tensor::kernels::{with_backend, GemmBackend, ALL_BACKENDS};
use qt_tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};

/// Dimension set the GEMM sweep draws from: unit, odd, prime-ish, and a
/// multiple of every tile parameter.
const DIMS: [usize; 4] = [1, 3, 17, 64];

/// All quantized formats the code-domain path stores (everything but
/// Fp32).
const QFORMATS: [ElemFormat; 8] = [
    ElemFormat::P8E0,
    ElemFormat::P8E1,
    ElemFormat::P8E2,
    ElemFormat::P16E1,
    ElemFormat::E4M3,
    ElemFormat::E5M2,
    ElemFormat::E5M3,
    ElemFormat::Bf16,
];

proptest! {
    #[test]
    fn matmul_bitwise_equal_across_thread_counts(
        mi in 0usize..4, ki in 0usize..4, ni in 0usize..4, seed in 0u64..1 << 32
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let reference = qt_par::serial(|| a.matmul(&b));
        for t in 1..=8usize {
            let out = qt_par::with_threads(t, || a.matmul(&b));
            prop_assert_eq!(out.data(), reference.data(), "m={} k={} n={} t={}", m, k, n, t);
        }
    }

    #[test]
    fn gemm_backends_bitwise_equal(
        mi in 0usize..5, ki in 0usize..5, ni in 0usize..5, seed in 0u64..1 << 32
    ) {
        // Backend axis of the determinism contract: every SIMD microkernel
        // must reproduce the scalar reference bit-for-bit, including empty
        // dimensions, at pool sizes 1 and 4.
        const EDIMS: [usize; 5] = [0, 1, 3, 17, 64];
        let (m, k, n) = (EDIMS[mi], EDIMS[ki], EDIMS[ni]);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let reference = with_backend(GemmBackend::Scalar, || qt_par::serial(|| a.matmul(&b)));
        for be in ALL_BACKENDS {
            if !be.available() {
                continue;
            }
            for t in [1usize, 4] {
                let out = with_backend(be, || qt_par::with_threads(t, || a.matmul(&b)));
                prop_assert_eq!(
                    out.data(), reference.data(),
                    "m={} k={} n={} backend={} t={}", m, k, n, be.name(), t
                );
            }
        }
    }

    #[test]
    fn code_domain_matches_f32_across_backends(
        fi in 0usize..8, bi in 0usize..2, seed in 0u64..1 << 32
    ) {
        // The code-domain GEMM (weights stored as quantized codes, decoded
        // panel-by-panel) must equal dequantize-then-matmul bit-for-bit,
        // for every storage format, every backend, batched or not.
        let fmt = QFORMATS[fi];
        let batched = bi == 1;
        let fq = FakeQuant::new(fmt);
        let mut rng = StdRng::seed_from_u64(seed);
        let xshape: &[usize] = if batched { &[2, 9, 33] } else { &[9, 33] };
        let x = fq.quantize(&Tensor::randn(xshape, &mut rng));
        let w = Tensor::randn(&[33, 17], &mut rng);
        let wq = fq.quantize_to_codes(&w).expect("quantized format");
        let pack = PackedQuantB::pack(&wq);
        let reference = with_backend(GemmBackend::Scalar, || {
            qt_par::serial(|| x.matmul(&wq.dequantize()))
        });
        for be in ALL_BACKENDS {
            if !be.available() {
                continue;
            }
            for t in [1usize, 4] {
                let out =
                    with_backend(be, || qt_par::with_threads(t, || matmul_codes(&x, &pack)));
                prop_assert_eq!(out.shape(), reference.shape());
                prop_assert_eq!(
                    out.data(), reference.data(),
                    "{:?} backend={} t={} batched={}", fmt, be.name(), t, batched
                );
            }
        }
    }

    #[test]
    fn batched_broadcast_matmul_deterministic(seed in 0u64..1 << 32) {
        // Broadcast batch (B shared across the batch axis) exercises the
        // pack-reuse path; batch × row-block units split the output.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[3, 64, 17], &mut rng);
        let b = Tensor::randn(&[17, 64], &mut rng);
        let reference = with_backend(GemmBackend::Scalar, || qt_par::serial(|| a.matmul(&b)));
        for t in [2, 4, 8] {
            let out = qt_par::with_threads(t, || a.matmul(&b));
            prop_assert_eq!(out.data(), reference.data(), "t={}", t);
        }
        // And across backends at a fixed pool size.
        for be in ALL_BACKENDS {
            if !be.available() {
                continue;
            }
            let out = with_backend(be, || qt_par::with_threads(4, || a.matmul(&b)));
            prop_assert_eq!(out.data(), reference.data(), "backend={}", be.name());
        }
    }

    #[test]
    fn quantize_bitwise_equal_across_thread_counts(seed in 0u64..1 << 32) {
        // 12288 elements: crosses the quantizer's parallel chunk size, so
        // health partials really are merged from multiple chunks.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor::randn(&[3, 64, 64], &mut rng).mul_scalar(16.0);
        x.data_mut()[7] = f32::NAN;
        x.data_mut()[9000] = f32::INFINITY;
        for fmt in [ElemFormat::P8E1, ElemFormat::E4M3] {
            let q = FakeQuant::new(fmt);
            let (rv, rh) = qt_par::serial(|| q.quantize_with_health(&x));
            for t in [2, 4, 8] {
                let (v, h) = qt_par::with_threads(t, || q.quantize_with_health(&x));
                let (bits_a, bits_b): (Vec<u32>, Vec<u32>) = (
                    v.data().iter().map(|f| f.to_bits()).collect(),
                    rv.data().iter().map(|f| f.to_bits()).collect(),
                );
                prop_assert_eq!(bits_a, bits_b, "{:?} t={}", fmt, t);
                prop_assert_eq!(h, rh, "{:?} t={}: health partials must merge in order", fmt, t);
            }
        }
    }

    #[test]
    fn softmax_and_layernorm_deterministic(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[96, 64], &mut rng);
        let gamma = Tensor::randn(&[64], &mut rng);
        let beta = Tensor::randn(&[64], &mut rng);
        let (rs, rl) = qt_par::serial(|| {
            (x.softmax_lastdim(), x.layernorm_lastdim(&gamma, &beta, 1e-5))
        });
        for t in [2, 8] {
            let (s, l) = qt_par::with_threads(t, || {
                (x.softmax_lastdim(), x.layernorm_lastdim(&gamma, &beta, 1e-5))
            });
            prop_assert_eq!(s.data(), rs.data(), "softmax t={}", t);
            prop_assert_eq!(l.data(), rl.data(), "layernorm t={}", t);
        }
    }
}

/// Every bf16-spaced f32 (all 2^16 top-16-bit patterns, i.e. every LUT
/// cell's low endpoint) must quantize identically through the
/// direct-index LUT and the reference scalar encoder, for every 8-/9-bit
/// format and both underflow policies.
#[test]
fn lut_matches_reference_on_all_bf16_spaced_inputs() {
    for fmt in [
        ElemFormat::P8E0,
        ElemFormat::P8E1,
        ElemFormat::P8E2,
        ElemFormat::E4M3,
        ElemFormat::E5M2,
        ElemFormat::E5M3,
    ] {
        for policy in [UnderflowPolicy::RoundTiesToZero, UnderflowPolicy::Standard] {
            let q = FakeQuant::with_policy(fmt, policy);
            for cell in 0u32..=0xFFFF {
                let x = f32::from_bits(cell << 16);
                if !x.is_finite() {
                    // Non-finite inputs go through the guard policy, not
                    // the LUT; covered by the guard tests.
                    continue;
                }
                let got = q.quantize_scalar(x);
                let want = fmt.quantize_scalar_with(x, policy);
                // Value equality: the table stores its single zero as
                // -0.0, so zero results differ from the reference only in
                // sign bit (pre-existing; all non-zero values are exact).
                assert_eq!(
                    got, want,
                    "{fmt:?} {policy:?} x={x:e} (cell {cell:#06x})"
                );
                if want != 0.0 {
                    assert_eq!(got.to_bits(), want.to_bits(), "{fmt:?} {policy:?} x={x:e}");
                }
            }
        }
    }
}

/// Every cell of the 2^16-entry product LUT must hold exactly the bits
/// of `decode(a) * decode(b)` — one IEEE rounding, same as the kernel
/// multiply — and its zero-skip flags must mirror the kernels' `av == 0`
/// test, for every 8-bit storage format (9-bit E5M3 is rejected by
/// `ProductLut::new` — covered in qt-quant's tests). Exhaustive: all
/// 256 × 256 code pairs per format.
#[test]
fn product_lut_matches_reference_exhaustively() {
    for fmt in [
        ElemFormat::P8E0,
        ElemFormat::P8E1,
        ElemFormat::P8E2,
        ElemFormat::E4M3,
        ElemFormat::E5M2,
    ] {
        let lut = ProductLut::new(fmt, fmt).expect("8-bit format");
        let ncodes = 1u32 << fmt.bits();
        for a in 0..ncodes as u16 {
            let Some(av) = fmt.decode_code(a) else {
                continue;
            };
            for b in 0..ncodes as u16 {
                let Some(bv) = fmt.decode_code(b) else {
                    continue;
                };
                let got = lut.product(a, b);
                let want = av * bv;
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "{fmt:?} codes ({a}, {b}): {got:e} vs {want:e}"
                );
            }
        }
    }
}

/// The full product-LUT GEMM must equal the dequantized f32 GEMM
/// bit-for-bit (both operands quantized), per 8-bit format.
#[test]
fn product_lut_gemm_matches_dequantized_gemm() {
    let mut rng = StdRng::seed_from_u64(31);
    for fmt in [ElemFormat::P8E1, ElemFormat::E4M3] {
        let fq = FakeQuant::new(fmt);
        let a = Tensor::randn(&[9, 33], &mut rng);
        let b = Tensor::randn(&[33, 17], &mut rng);
        let aq = fq.quantize_to_codes(&a).expect("8-bit");
        let wq = fq.quantize_to_codes(&b).expect("8-bit");
        let pack = PackedCodesB::pack(&wq);
        let lut = ProductLut::new(fmt, fmt).expect("8-bit");
        let reference = qt_par::serial(|| aq.dequantize().matmul(&wq.dequantize()));
        for t in [1usize, 4] {
            let out = qt_par::with_threads(t, || matmul_product_lut(&aq, &pack, &lut));
            assert_eq!(out.data(), reference.data(), "{fmt:?} t={t}");
        }
    }
}

/// The counter feeding the `par.chunk_tasks` metric must not depend on
/// the pool size — chunk decomposition is a function of the workload.
#[test]
fn chunk_task_counter_is_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(99);
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);
    let count_at = |t: usize| {
        qt_par::with_threads(t, || {
            let before = qt_par::tasks_executed();
            let _ = a.matmul(&b);
            let _ = FakeQuant::new(ElemFormat::P8E1).quantize(&a);
            qt_par::tasks_executed() - before
        })
    };
    let serial = count_at(1);
    for t in [2, 4, 8] {
        assert_eq!(count_at(t), serial, "t={t}");
    }
}

/// Validate the `perf_kernels` output schema. Runs over the file named
/// by `QT_VALIDATE_KERNELS` (CI's perf-smoke job runs the binary first);
/// skips silently when the variable is unset.
#[test]
fn env_named_kernels_json_validates() {
    let Ok(path) = std::env::var("QT_VALIDATE_KERNELS") else {
        return;
    };
    let text = std::fs::read_to_string(&path).expect("BENCH_kernels.json readable");
    let v: serde_json::Value = serde_json::from_str(&text).expect("BENCH_kernels.json parses");
    assert_eq!(v["bench"].as_str(), Some("perf_kernels"));
    assert_eq!(v["schema"].as_str(), Some("qt-bench/kernels/v2"));
    assert_eq!(v["version"].as_u64(), Some(2));
    assert!(matches!(v["mode"].as_str(), Some("quick") | Some("full")));
    assert!(v["threads_available"].as_u64().unwrap_or(0) >= 1);
    let sweep = v["sweep"].as_array().expect("sweep array");
    assert!(!sweep.is_empty());
    let backends: Vec<&str> = v["backends"]
        .as_array()
        .expect("backends array")
        .iter()
        .map(|b| b.as_str().expect("backend name"))
        .collect();
    assert!(backends.contains(&"scalar"), "scalar backend always present");
    let check_ms = |ms: &serde_json::Value, what: &str| {
        let ms = ms.as_object().unwrap_or_else(|| panic!("{what} ms map"));
        assert_eq!(ms.len(), sweep.len(), "{what}: one timing per sweep point");
        for (k, t) in ms {
            assert!(t.as_f64().unwrap_or(-1.0) >= 0.0, "{what}.{k}");
        }
    };
    // GEMM rows: f32/code carry a per-backend timing matrix, lut a plain
    // pool-size map.
    let gemm = v["gemm"].as_array().expect("gemm array");
    assert!(!gemm.is_empty(), "gemm rows");
    for row in gemm {
        let domain = row["domain"].as_str().expect("gemm row domain");
        match domain {
            "f32" | "code" => {
                let per = row["backend"].as_object().expect("backend matrix");
                assert_eq!(per.len(), backends.len(), "one column per backend");
                for (bname, ms) in per {
                    assert!(backends.contains(&bname.as_str()), "unknown backend {bname}");
                    check_ms(ms, &format!("gemm[{domain}].{bname}"));
                }
            }
            "lut" => check_ms(&row["ms"], "gemm[lut]"),
            other => panic!("unknown gemm domain {other:?}"),
        }
    }
    // Trajectory: the tracked perf history plus the current speedup.
    let traj = &v["trajectory"];
    assert!(
        traj["speedup_best_vs_scalar"].as_f64().unwrap_or(-1.0) > 0.0,
        "trajectory speedup"
    );
    let history = traj["history"].as_array().expect("trajectory history");
    assert!(!history.is_empty(), "history never empty after a run");
    for h in history {
        assert!(h["speedup_best_vs_scalar"].as_f64().unwrap_or(-1.0) > 0.0);
        assert!(matches!(h["mode"].as_str(), Some("quick") | Some("full")));
    }
    assert!(traj["per_shape"].as_array().is_some_and(|p| !p.is_empty()));
    // quantize + forward are skipped under --gemm-only.
    let gemm_only = v["gemm_only"].as_bool() == Some(true);
    if gemm_only {
        assert_eq!(v["forward"], serde_json::Value::Null, "--gemm-only writes no forward row");
    } else {
        for row in v["quantize"].as_array().expect("quantize array") {
            check_ms(&row["ms"], "quantize");
        }
        assert_eq!(v["forward"]["deterministic"].as_bool(), Some(true));
        assert!(v["forward"]["perplexity"].as_f64().unwrap_or(-1.0) > 0.0);
    }
}

/// Owned (in-place) quantization must agree with the borrowed path.
#[test]
fn owned_quantize_matches_borrowed() {
    let mut rng = StdRng::seed_from_u64(5);
    let x = Tensor::randn(&[4096], &mut rng).mul_scalar(32.0);
    for fmt in [ElemFormat::P8E1, ElemFormat::E5M2] {
        let q = FakeQuant::new(fmt);
        assert_eq!(q.quantize_owned(x.clone()).data(), q.quantize(&x).data());
        assert_eq!(
            q.quantize_scaled_owned(x.clone(), 3.5).data(),
            q.quantize_scaled(&x, 3.5).data()
        );
    }
}
