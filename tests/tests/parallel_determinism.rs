//! The qt-par determinism contract, cross-crate: every parallelized
//! kernel must produce bitwise-identical results at every thread count,
//! because chunk boundaries and accumulation order depend only on the
//! input shape — never on the pool size.

use proptest::prelude::*;
use qt_posit::UnderflowPolicy;
use qt_quant::{ElemFormat, FakeQuant};
use qt_tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};

/// Dimension set the GEMM sweep draws from: unit, odd, prime-ish, and a
/// multiple of every tile parameter.
const DIMS: [usize; 4] = [1, 3, 17, 64];

proptest! {
    #[test]
    fn matmul_bitwise_equal_across_thread_counts(
        mi in 0usize..4, ki in 0usize..4, ni in 0usize..4, seed in 0u64..1 << 32
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[m, k], &mut rng);
        let b = Tensor::randn(&[k, n], &mut rng);
        let reference = qt_par::serial(|| a.matmul(&b));
        for t in 1..=8usize {
            let out = qt_par::with_threads(t, || a.matmul(&b));
            prop_assert_eq!(out.data(), reference.data(), "m={} k={} n={} t={}", m, k, n, t);
        }
    }

    #[test]
    fn batched_broadcast_matmul_deterministic(seed in 0u64..1 << 32) {
        // Broadcast batch (B shared across the batch axis) exercises the
        // pack-reuse path; batch × row-block units split the output.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::randn(&[3, 64, 17], &mut rng);
        let b = Tensor::randn(&[17, 64], &mut rng);
        let reference = qt_par::serial(|| a.matmul(&b));
        for t in [2, 4, 8] {
            let out = qt_par::with_threads(t, || a.matmul(&b));
            prop_assert_eq!(out.data(), reference.data(), "t={}", t);
        }
    }

    #[test]
    fn quantize_bitwise_equal_across_thread_counts(seed in 0u64..1 << 32) {
        // 12288 elements: crosses the quantizer's parallel chunk size, so
        // health partials really are merged from multiple chunks.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Tensor::randn(&[3, 64, 64], &mut rng).mul_scalar(16.0);
        x.data_mut()[7] = f32::NAN;
        x.data_mut()[9000] = f32::INFINITY;
        for fmt in [ElemFormat::P8E1, ElemFormat::E4M3] {
            let q = FakeQuant::new(fmt);
            let (rv, rh) = qt_par::serial(|| q.quantize_with_health(&x));
            for t in [2, 4, 8] {
                let (v, h) = qt_par::with_threads(t, || q.quantize_with_health(&x));
                let (bits_a, bits_b): (Vec<u32>, Vec<u32>) = (
                    v.data().iter().map(|f| f.to_bits()).collect(),
                    rv.data().iter().map(|f| f.to_bits()).collect(),
                );
                prop_assert_eq!(bits_a, bits_b, "{:?} t={}", fmt, t);
                prop_assert_eq!(h, rh, "{:?} t={}: health partials must merge in order", fmt, t);
            }
        }
    }

    #[test]
    fn softmax_and_layernorm_deterministic(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::randn(&[96, 64], &mut rng);
        let gamma = Tensor::randn(&[64], &mut rng);
        let beta = Tensor::randn(&[64], &mut rng);
        let (rs, rl) = qt_par::serial(|| {
            (x.softmax_lastdim(), x.layernorm_lastdim(&gamma, &beta, 1e-5))
        });
        for t in [2, 8] {
            let (s, l) = qt_par::with_threads(t, || {
                (x.softmax_lastdim(), x.layernorm_lastdim(&gamma, &beta, 1e-5))
            });
            prop_assert_eq!(s.data(), rs.data(), "softmax t={}", t);
            prop_assert_eq!(l.data(), rl.data(), "layernorm t={}", t);
        }
    }
}

/// Every bf16-spaced f32 (all 2^16 top-16-bit patterns, i.e. every LUT
/// cell's low endpoint) must quantize identically through the
/// direct-index LUT and the reference scalar encoder, for every 8-/9-bit
/// format and both underflow policies.
#[test]
fn lut_matches_reference_on_all_bf16_spaced_inputs() {
    for fmt in [
        ElemFormat::P8E0,
        ElemFormat::P8E1,
        ElemFormat::P8E2,
        ElemFormat::E4M3,
        ElemFormat::E5M2,
        ElemFormat::E5M3,
    ] {
        for policy in [UnderflowPolicy::RoundTiesToZero, UnderflowPolicy::Standard] {
            let q = FakeQuant::with_policy(fmt, policy);
            for cell in 0u32..=0xFFFF {
                let x = f32::from_bits(cell << 16);
                if !x.is_finite() {
                    // Non-finite inputs go through the guard policy, not
                    // the LUT; covered by the guard tests.
                    continue;
                }
                let got = q.quantize_scalar(x);
                let want = fmt.quantize_scalar_with(x, policy);
                // Value equality: the table stores its single zero as
                // -0.0, so zero results differ from the reference only in
                // sign bit (pre-existing; all non-zero values are exact).
                assert_eq!(
                    got, want,
                    "{fmt:?} {policy:?} x={x:e} (cell {cell:#06x})"
                );
                if want != 0.0 {
                    assert_eq!(got.to_bits(), want.to_bits(), "{fmt:?} {policy:?} x={x:e}");
                }
            }
        }
    }
}

/// The counter feeding the `par.chunk_tasks` metric must not depend on
/// the pool size — chunk decomposition is a function of the workload.
#[test]
fn chunk_task_counter_is_thread_count_invariant() {
    let mut rng = StdRng::seed_from_u64(99);
    let a = Tensor::randn(&[64, 64], &mut rng);
    let b = Tensor::randn(&[64, 64], &mut rng);
    let count_at = |t: usize| {
        qt_par::with_threads(t, || {
            let before = qt_par::tasks_executed();
            let _ = a.matmul(&b);
            let _ = FakeQuant::new(ElemFormat::P8E1).quantize(&a);
            qt_par::tasks_executed() - before
        })
    };
    let serial = count_at(1);
    for t in [2, 4, 8] {
        assert_eq!(count_at(t), serial, "t={t}");
    }
}

/// Validate the `perf_kernels` output schema. Runs over the file named
/// by `QT_VALIDATE_KERNELS` (CI's perf-smoke job runs the binary first);
/// skips silently when the variable is unset.
#[test]
fn env_named_kernels_json_validates() {
    let Ok(path) = std::env::var("QT_VALIDATE_KERNELS") else {
        return;
    };
    let text = std::fs::read_to_string(&path).expect("BENCH_kernels.json readable");
    let v: serde_json::Value = serde_json::from_str(&text).expect("BENCH_kernels.json parses");
    assert_eq!(v["bench"].as_str(), Some("perf_kernels"));
    assert!(v["version"].as_u64().is_some());
    assert!(matches!(v["mode"].as_str(), Some("quick") | Some("full")));
    assert!(v["threads_available"].as_u64().unwrap_or(0) >= 1);
    let sweep = v["sweep"].as_array().expect("sweep array");
    assert!(!sweep.is_empty());
    for section in ["gemm", "quantize"] {
        let rows = v[section].as_array().unwrap_or_else(|| panic!("{section} array"));
        assert!(!rows.is_empty(), "{section} rows");
        for row in rows {
            let ms = row["ms"].as_object().unwrap_or_else(|| panic!("{section}.ms"));
            assert_eq!(ms.len(), sweep.len(), "{section}: one timing per sweep point");
            for (k, t) in ms {
                assert!(t.as_f64().unwrap_or(-1.0) >= 0.0, "{section}.ms.{k}");
            }
        }
    }
    assert_eq!(v["forward"]["deterministic"].as_bool(), Some(true));
    assert!(v["forward"]["perplexity"].as_f64().unwrap_or(-1.0) > 0.0);
}

/// Owned (in-place) quantization must agree with the borrowed path.
#[test]
fn owned_quantize_matches_borrowed() {
    let mut rng = StdRng::seed_from_u64(5);
    let x = Tensor::randn(&[4096], &mut rng).mul_scalar(32.0);
    for fmt in [ElemFormat::P8E1, ElemFormat::E5M2] {
        let q = FakeQuant::new(fmt);
        assert_eq!(q.quantize_owned(x.clone()).data(), q.quantize(&x).data());
        assert_eq!(
            q.quantize_scaled_owned(x.clone(), 3.5).data(),
            q.quantize_scaled(&x, 3.5).data()
        );
    }
}
