//! Schema checks for the qt-trace exporters.
//!
//! Two modes:
//!
//! * Always: build a traced end-to-end run in-process (model forward +
//!   a few training steps on an accelerator cycle model) and validate
//!   the three artifacts — Chrome trace, JSONL stream, manifest —
//!   against the schema rules below, plus manifest determinism.
//! * When `QT_VALIDATE_TRACE` / `QT_VALIDATE_MANIFEST` point at files
//!   (as in the CI smoke job, which runs a bench binary first), the
//!   same validators run over those files instead.

use qt_accel::{Accelerator, Datapath, SystolicSim};
use qt_datagen::{ClassifyKind, ClassifyTask};
use qt_quant::QuantScheme;
use qt_trace::{chrome_trace, jsonl, RunManifest, TraceSession, MANIFEST_VERSION};
use qt_train::{AdamW, LossScaler, Trainer};
use qt_transformer::{Model, QuantCtx, TaskHead, TrainMode, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};
use serde_json::Value;
use std::rc::Rc;

/// Validate a Chrome `trace_event` document: object form, metadata
/// naming both tracks, every event carrying the required keys, and the
/// cycle track nesting at least one GEMM inside a block span.
fn validate_chrome(doc: &Value) {
    let events = doc["traceEvents"]
        .as_array()
        .expect("traceEvents array");
    assert!(!events.is_empty(), "trace has events");
    let mut track_names = Vec::new();
    for e in events {
        let ph = e["ph"].as_str().expect("ph");
        assert!(e["name"].as_str().is_some(), "name: {e:?}");
        assert!(e["pid"].as_u64().is_some(), "pid: {e:?}");
        assert!(e["tid"].as_u64().is_some(), "tid: {e:?}");
        match ph {
            "M" => track_names.push(e["args"]["name"].as_str().unwrap().to_string()),
            "X" => {
                assert!(e["ts"].as_f64().is_some(), "ts: {e:?}");
                assert!(e["dur"].as_f64().unwrap_or(-1.0) >= 0.0, "dur: {e:?}");
            }
            "i" => assert!(e["ts"].as_f64().is_some(), "ts: {e:?}"),
            other => panic!("unexpected phase {other:?}"),
        }
    }
    assert!(track_names.iter().any(|n| n == "wall"));
    assert!(track_names.iter().any(|n| n == "sim-cycles"));

    // Nesting on the cycle track: a gemm span contained in a block span.
    let cyc: Vec<&Value> = events
        .iter()
        .filter(|e| e["tid"].as_u64() == Some(2) && e["ph"] == "X")
        .collect();
    let blocks: Vec<&&Value> = cyc.iter().filter(|e| e["cat"] == "block").collect();
    let gemms: Vec<&&Value> = cyc.iter().filter(|e| e["cat"] == "gemm").collect();
    assert!(!blocks.is_empty(), "cycle track has block spans");
    assert!(!gemms.is_empty(), "cycle track has gemm spans");
    let contained = gemms.iter().any(|g| {
        let (gts, gdur) = (g["ts"].as_f64().unwrap(), g["dur"].as_f64().unwrap());
        blocks.iter().any(|b| {
            let (bts, bdur) = (b["ts"].as_f64().unwrap(), b["dur"].as_f64().unwrap());
            gts >= bts && gts + gdur <= bts + bdur
        })
    });
    assert!(contained, "a GEMM span nests inside a block span");
}

/// Validate the JSONL stream: every line parses, carries the event
/// envelope, and `seq` increments from zero.
fn validate_jsonl(text: &str) {
    let mut expected = 0u64;
    for line in text.lines() {
        let v: Value = serde_json::from_str(line).expect("line parses");
        assert_eq!(v["seq"].as_u64(), Some(expected), "seq order");
        expected += 1;
        let ty = v["type"].as_str().expect("type");
        assert!(v["name"].as_str().is_some());
        assert!(v["cat"].as_str().is_some());
        assert!(v["t_ns"].as_u64().is_some());
        match ty {
            "span" => {
                let c = v["cycles"].as_u64().expect("cycles");
                let t = v["cycles_total"].as_u64().expect("cycles_total");
                assert!(t >= c, "total ≥ own cycles");
            }
            "instant" => assert!(v["args"].as_object().is_some()),
            other => panic!("unexpected type {other:?}"),
        }
    }
    assert!(expected > 0, "stream is non-empty");
}

/// Validate the manifest: version, required sections with the right
/// shapes, and internally-consistent site aggregates.
fn validate_manifest(v: &Value) {
    assert_eq!(v["version"].as_u64(), Some(MANIFEST_VERSION));
    assert!(v["name"].as_str().is_some());
    assert!(v["meta"].as_object().is_some());
    assert!(v["counts"]["spans"].as_u64().is_some());
    assert!(v["counts"]["instants"].as_u64().is_some());
    let quant = v["quant_sites"].as_object().expect("quant_sites");
    for (site, q) in quant {
        let elements = q["elements"].as_u64().unwrap_or_else(|| panic!("{site}"));
        for field in ["saturated", "underflowed", "nonfinite_in", "nonfinite_out"] {
            assert!(q[field].as_u64().unwrap() <= elements, "{site}.{field}");
        }
        assert!(q["events"].as_u64().unwrap() > 0, "{site}.events");
        assert!(!q["formats"].as_array().unwrap().is_empty(), "{site}.formats");
    }
    let gemm = v["gemm_sites"].as_object().expect("gemm_sites");
    for (site, g) in gemm {
        assert!(g["count"].as_u64().unwrap() > 0, "{site}.count");
        let util = g["utilization"].as_f64().unwrap();
        assert!((0.0..=1.0).contains(&util), "{site}.utilization {util}");
        assert!(
            g["active_cycles"].as_u64().unwrap() <= g["cycles"].as_u64().unwrap(),
            "{site}: active ≤ total"
        );
    }
    for s in v["scaler"].as_array().expect("scaler array") {
        assert!(s["step"].as_u64().is_some());
        assert!(s["event"].as_str().is_some());
        assert!(s["from"].as_f64().is_some() && s["to"].as_f64().is_some());
    }
    assert!(v["metrics"]["counters"].as_object().is_some());
    assert!(v["metrics"]["gauges"].as_object().is_some());
    assert!(v["metrics"]["hists"].as_object().is_some());
    // v2: the host section records the qt-par pool ("host" is absent only
    // from the deterministic view, which this validator never sees).
    let host = v["host"].as_object().expect("host section");
    assert!(v["host"]["threads"].as_u64().unwrap_or(0) >= 1, "host.threads");
    assert!(host.contains_key("qt_threads"), "host.qt_threads");
}

/// A small traced run: quantized forward passes plus a few fine-tuning
/// steps with a dynamic scaler, all on one session with simulated cycles.
fn traced_run(seed: u64) -> TraceSession {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cfg = TransformerConfig::mobilebert_tiny_sim();
    cfg.layers = 2;
    let task = ClassifyTask::new(ClassifyKind::Sst2, cfg.vocab, 12);
    let model = Model::new(cfg, TaskHead::Classify(2), &mut rng);

    let session = TraceSession::new("trace-schema").handle();
    session.borrow_mut().set_meta("seed", seed.to_string());
    session.borrow_mut().set_meta("scheme", "posit8");
    let sim = SystolicSim::new(Accelerator::new(8, Datapath::Posit8));
    let qctx = QuantCtx::training(QuantScheme::posit8())
        .with_trace(Rc::clone(&session))
        .with_cycle_model(Rc::new(sim));
    let mut trainer = Trainer::new(model, qctx, TrainMode::Full, AdamW::new(1e-3))
        .with_dynamic_scaling(LossScaler::new(f32::MAX).with_backoff(1.0 / 65536.0));
    let data = task.dataset(8, seed ^ 0x7A);
    let (batch, labels) = task.batch(&data);
    for _ in 0..3 {
        trainer.step_classify(&batch, &labels);
    }
    drop(trainer); // releases the QuantCtx's handle clone
    Rc::try_unwrap(session)
        .expect("sole owner")
        .into_inner()
}

#[test]
fn in_process_artifacts_validate() {
    let session = traced_run(11);
    validate_chrome(&serde_json::from_str(&chrome_trace(&session)).unwrap());
    validate_jsonl(&jsonl(&session));
    validate_manifest(&RunManifest::value(&session));
}

#[test]
fn same_seed_manifests_are_byte_identical() {
    let a = RunManifest::render(&traced_run(7));
    let b = RunManifest::render(&traced_run(7));
    assert_eq!(a, b, "manifest must not depend on wall time");
}

#[test]
fn manifests_deterministic_across_thread_counts() {
    // The full traced run — forward, backward, optimizer, cycle model —
    // must produce byte-identical deterministic manifests whether the
    // kernels ran serially or on a pool.
    let a = qt_par::with_threads(1, || RunManifest::render_deterministic(&traced_run(7)));
    let b = qt_par::with_threads(4, || RunManifest::render_deterministic(&traced_run(7)));
    assert_eq!(a, b, "kernels must be bitwise-deterministic in thread count");
    assert!(!a.contains("\"host\""));
}

#[test]
fn untraced_run_allocates_no_events() {
    // The hot path without a session: the same run must record nothing
    // and take the no-trace branches throughout.
    let mut rng = StdRng::seed_from_u64(3);
    let mut cfg = TransformerConfig::mobilebert_tiny_sim();
    cfg.layers = 1;
    let task = ClassifyTask::new(ClassifyKind::Sst2, cfg.vocab, 12);
    let model = Model::new(cfg, TaskHead::Classify(2), &mut rng);
    let qctx = QuantCtx::training(QuantScheme::posit8());
    assert!(!qctx.traced());
    let mut trainer = Trainer::new(model, qctx, TrainMode::Full, AdamW::new(1e-3));
    let data = task.dataset(8, 5);
    let (batch, labels) = task.batch(&data);
    trainer.step_classify(&batch, &labels);
    assert!(trainer.steps() + trainer.skipped() == 1);
}

#[test]
fn env_named_files_validate() {
    // CI smoke: a bench binary ran with --trace-out/--manifest-out and
    // the resulting files are handed to the same validators.
    if let Ok(path) = std::env::var("QT_VALIDATE_TRACE") {
        let text = std::fs::read_to_string(&path).expect("trace file readable");
        validate_chrome(&serde_json::from_str(&text).expect("trace parses"));
        let jsonl_path = std::path::Path::new(&path).with_extension("jsonl");
        if jsonl_path.exists() {
            validate_jsonl(&std::fs::read_to_string(jsonl_path).unwrap());
        }
    }
    if let Ok(path) = std::env::var("QT_VALIDATE_MANIFEST") {
        let text = std::fs::read_to_string(&path).expect("manifest file readable");
        validate_manifest(&serde_json::from_str(&text).expect("manifest parses"));
    }
}
