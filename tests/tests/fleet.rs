//! Chaos-style integration tests for the qt-fleet multi-replica fleet.
//!
//! * The fleet simulation — routing, failover, hedging, crashes,
//!   snapshots — must produce **byte-identical** reports at any kernel
//!   pool size (`QT_THREADS` equivalents 1 and 4).
//! * Routing safety properties hold for arbitrary seeds, policies, and
//!   load levels (property-based over the dispatch audit trail): no
//!   request is ever dispatched to a replica whose breaker is Open, and
//!   a failover never re-selects a replica that already failed that
//!   request.
//! * A mid-run crash of one replica in a fleet under corruption must
//!   fail work over, recover the crashed node through its snapshot, and
//!   put it back in rotation — with zero unflagged corrupt responses,
//!   verified by deterministic replay.
//! * When `QT_VALIDATE_FLEET` names a `BENCH_fleet.json` (CI's
//!   fleet-smoke job runs the binary first), its schema is validated.

use proptest::prelude::*;
use qt_fleet::{
    audit_unflagged_corruption, run_fleet, ArrivalShape, DispatchCause, FleetConfig,
    FleetLoadSpec, FleetReport, MemSnapStore, ReplicaSpec, ReplicaView, Router, RouterPolicy,
};
use qt_quant::ElemFormat;
use qt_robust::{BerFaultSource, CodeFormat, CrashSchedule, FaultSource, NoFaults};
use qt_serve::BreakerState;
use qt_transformer::{Model, TaskHead, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};

fn tiny_model() -> Model {
    static MODEL: std::sync::OnceLock<Model> = std::sync::OnceLock::new();
    MODEL
        .get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(11);
            Model::new(
                TransformerConfig::mobilebert_tiny_sim(),
                TaskHead::Classify(2),
                &mut rng,
            )
        })
        .clone()
}

/// A 3-replica heterogeneous fleet: a posit8 node in a fault
/// environment, a clean E4M3 node with a mid-run outage, and a slow but
/// immune BF16 node.
fn chaos_config(policy: RouterPolicy) -> FleetConfig {
    let pass = 6 * ReplicaSpec::BASE_BLOCK_US;
    FleetConfig {
        replicas: vec![
            ReplicaSpec::new(ElemFormat::P8E1),
            ReplicaSpec::new(ElemFormat::E4M3)
                .with_crashes(CrashSchedule::single(8 * pass, 10 * pass)),
            ReplicaSpec::new(ElemFormat::Bf16),
        ],
        policy,
        snapshot_every_us: 2 * pass,
        ..FleetConfig::default()
    }
}

fn chaos_faults(ber: f64) -> Vec<Box<dyn FaultSource + Send + Sync>> {
    let codec = CodeFormat::new(ElemFormat::P8E1).expect("P8E1 has stored codes");
    vec![
        Box::new(BerFaultSource::new(0xfa17, codec, ber)),
        Box::new(NoFaults),
        Box::new(NoFaults),
    ]
}

fn chaos_load(seed: u64, rps_passes: f64, passes: u64) -> Vec<qt_fleet::FleetRequest> {
    let pass = 6 * ReplicaSpec::BASE_BLOCK_US;
    FleetLoadSpec {
        rps: rps_passes * 1e6 / pass as f64,
        duration_us: passes * pass,
        shape: ArrivalShape::Bursty {
            burst_len_us: 4 * pass,
            burst_mult: 3.0,
        },
        period_us: 12 * pass,
        deadline_us: 6 * pass,
        seed,
        ..FleetLoadSpec::default()
    }
    .requests(tiny_model().cfg.vocab)
}

fn chaos_run(policy: RouterPolicy, seed: u64, rps_passes: f64, passes: u64) -> FleetReport {
    run_fleet(
        &tiny_model(),
        &chaos_config(policy),
        &chaos_load(seed, rps_passes, passes),
        chaos_faults(2e-3),
        Box::new(MemSnapStore::new()),
        None,
    )
}

/// The tentpole determinism claim: a full fleet run — heterogeneous
/// replicas, corruption, a crash, snapshots, failover — serializes to
/// the same bytes whether the kernels underneath run on 1 thread or 4.
#[test]
fn fleet_report_is_byte_identical_across_thread_pools() {
    let run = |threads: usize| {
        qt_par::with_threads(threads, || {
            let report = chaos_run(RouterPolicy::HealthAware, 77, 1.5, 24);
            serde_json::to_string(&report.to_json()).expect("serializable")
        })
    };
    let single = run(1);
    let quad = run(4);
    assert_eq!(single, quad, "fleet report must not depend on QT_THREADS");
}

/// Crash-recovery round trip under corruption: the E4M3 replica dies
/// mid-run and must (a) hand its in-flight/queued work to healthy
/// peers, (b) come back through its health snapshot, (c) re-earn
/// traffic, and (d) never let a corrupt response out unflagged.
#[test]
fn crash_under_corruption_fails_over_recovers_and_replays_clean() {
    let cfg = chaos_config(RouterPolicy::HealthAware);
    let requests = chaos_load(13, 2.0, 30);
    let report = run_fleet(
        &tiny_model(),
        &cfg,
        &requests,
        chaos_faults(2e-3),
        Box::new(MemSnapStore::new()),
        None,
    );
    assert!(report.reconciles(), "counters reconcile to offered load");
    assert!(
        report.failovers + report.requeued_on_crash > 0,
        "corruption or the crash must move work between replicas"
    );
    let crashed = &report.replicas[1];
    assert_eq!(crashed.stats.crashes, 1, "the outage fired");
    assert_eq!(crashed.stats.recoveries, 1, "the replica rebooted");
    assert!(
        crashed.stats.snapshot_resumes == 1 || crashed.stats.snapshot_corrupt > 0,
        "recovery consulted the snapshot store"
    );
    assert!(
        crashed.stats.served_after_recovery > 0,
        "the recovered replica re-earned traffic: {:?}",
        crashed.stats
    );
    assert_eq!(
        audit_unflagged_corruption(
            &tiny_model(),
            &cfg,
            &requests,
            chaos_faults(2e-3),
            &report
        ),
        0,
        "every served-primary response must replay healthy"
    );
}

/// Memoized chaos runs for the routing property: cases draw from a
/// small discrete space of (seed, policy, load) so the expensive fleet
/// simulations execute once each while the invariants are re-checked
/// for every generated case over the *complete* dispatch history.
fn cached_chaos_run(policy_idx: usize, seed: u64, overload: bool) -> std::sync::Arc<FleetReport> {
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex, OnceLock};
    type Cache = BTreeMap<(usize, u64, bool), Arc<FleetReport>>;
    static CACHE: OnceLock<Mutex<Cache>> = OnceLock::new();
    let policy = [
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastLoaded,
        RouterPolicy::HealthAware,
    ][policy_idx];
    let rps_passes = if overload { 2.0 } else { 0.8 };
    let mut cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new())).lock().unwrap();
    cache
        .entry((policy_idx, seed, overload))
        .or_insert_with(|| Arc::new(chaos_run(policy, seed, rps_passes, 16)))
        .clone()
}

// Routing safety, property-based over the dispatch audit trail. Every
// routing decision the fleet ever made is in `report.dispatches`, so
// the invariants are checked against the complete history, not a
// sample: (a) no dispatch ever targets a replica whose breaker was
// Open at decision time, and (b) a failover/requeue/hedge never lands
// on a replica that already failed that request.
proptest! {
    #[test]
    fn routing_never_targets_open_breakers_or_failed_replicas(
        seed in 0u64..2,
        policy_idx in 0usize..3,
        overload_bit in 0u8..2,
    ) {
        let report = cached_chaos_run(policy_idx, seed, overload_bit == 1);
        prop_assert!(report.reconciles());
        for d in &report.dispatches {
            prop_assert_ne!(
                d.breaker,
                BreakerState::Open,
                "request {} dispatched to replica {} with an Open breaker at {}us ({:?})",
                d.req_id, d.replica, d.at_us, d.cause
            );
            prop_assert!(
                !d.excluded.contains(&d.replica),
                "request {} re-routed ({:?}) back onto failed replica {} at {}us",
                d.req_id, d.cause, d.replica, d.at_us
            );
            if d.cause.is_failover() || d.cause == DispatchCause::Requeue {
                prop_assert!(
                    !d.excluded.is_empty(),
                    "failover dispatch must record what it is failing away from"
                );
            }
        }
    }
}

// The half-open probe budget, property-based against the router
// itself: a recovering (HalfOpen) replica receives at most one pick
// per PROBE_EVERY consecutive HealthAware decisions as long as any
// Closed replica stays eligible — arbitrary queue depths (peak-arrival
// churn) must not let probe traffic exceed the quota.
proptest! {
    #[test]
    fn rejoining_replica_never_exceeds_probe_budget(
        seed in 0u64..1_000,
        n_closed in 1usize..4,
        rounds in 16usize..160,
    ) {
        let mut router = Router::new(RouterPolicy::HealthAware);
        let half_open_id = n_closed;
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        let mut probed = Vec::with_capacity(rounds);
        for _ in 0..rounds {
            let mut views = Vec::with_capacity(n_closed + 1);
            for id in 0..n_closed {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                views.push(ReplicaView {
                    id,
                    up: true,
                    breaker: BreakerState::Closed,
                    queued: (state >> 33) as usize % 4, // < cap: always room
                    in_service: (state >> 37) as usize % 2,
                    queue_cap: 8,
                    full_pass_us: 6_000,
                });
            }
            views.push(ReplicaView {
                id: half_open_id,
                up: true,
                breaker: BreakerState::HalfOpen,
                queued: 0,
                in_service: 0,
                queue_cap: 8,
                full_pass_us: 6_000,
            });
            probed.push(router.pick(&views, &[]) == Some(half_open_id));
        }
        let k = Router::PROBE_EVERY as usize;
        for (i, w) in probed.windows(k).enumerate() {
            let probes = w.iter().filter(|&&p| p).count();
            prop_assert!(
                probes <= 1,
                "{probes} probes in decisions [{i}, {}) — budget is 1 per {k}",
                i + k
            );
        }
        let total = probed.iter().filter(|&&p| p).count();
        prop_assert!(total <= rounds / k + 1, "total probes {total} over {rounds} decisions");
    }
}

/// Memoized gray-failure chaos runs: replica 1 silently slows 3× under
/// a spread-the-load policy, with the adaptive plane's detector armed.
fn cached_gray_run(seed: u64) -> std::sync::Arc<FleetReport> {
    use std::collections::BTreeMap;
    use std::sync::{Arc, Mutex, OnceLock};
    static CACHE: OnceLock<Mutex<BTreeMap<u64, Arc<FleetReport>>>> = OnceLock::new();
    let pass = 6 * ReplicaSpec::BASE_BLOCK_US;
    let cfg = FleetConfig {
        replicas: vec![
            ReplicaSpec::new(ElemFormat::P8E1),
            ReplicaSpec::new(ElemFormat::P8E1).with_gray_slowdown(4 * pass, 3),
            ReplicaSpec::new(ElemFormat::P8E1),
        ],
        policy: RouterPolicy::RoundRobin,
        adapt_every_us: 16 * pass,
        gray: Some(qt_adapt::GrayConfig {
            factor: 1.5,
            min_samples: 3,
            eject_consecutive: 2,
            rejoin_consecutive: 2,
        }),
        ..FleetConfig::default()
    };
    let load = FleetLoadSpec {
        rps: 2.0 * 1e6 / pass as f64,
        duration_us: 80 * pass,
        shape: ArrivalShape::Constant,
        deadline_us: 0,
        seed,
        ..FleetLoadSpec::default()
    }
    .requests(tiny_model().cfg.vocab);
    let mut cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new())).lock().unwrap();
    cache
        .entry(seed)
        .or_insert_with(|| {
            Arc::new(run_fleet(
                &tiny_model(),
                &cfg,
                &load,
                vec![
                    Box::new(NoFaults),
                    Box::new(NoFaults),
                    Box::new(NoFaults),
                ],
                Box::new(MemSnapStore::new()),
                None,
            ))
        })
        .clone()
}

// A gray-ejected replica is out of rotation for the duration of its
// ejection: between its `gray_eject` and the matching `gray_rejoin`
// (or end of run), the only dispatches it may receive are HalfOpen
// probes — routine Closed-breaker traffic never lands there, for
// every arrival seed.
proptest! {
    #[test]
    fn ejected_gray_replica_gets_probes_only(seed in 0u64..2) {
        let report = cached_gray_run(seed);
        prop_assert!(report.reconciles());
        prop_assert!(
            report.gray_ejections >= 1,
            "the 3x-slow replica must be caught: {:?}",
            report.adapt_events
        );
        // Pair each ejection with its rejoin (or end of run) per replica.
        for (i, e) in report.adapt_events.iter().enumerate() {
            if e.kind != "gray_eject" {
                continue;
            }
            let r = e.replica.expect("gray events carry a replica");
            let until = report.adapt_events[i + 1..]
                .iter()
                .find(|x| x.kind == "gray_rejoin" && x.replica == Some(r))
                .map(|x| x.at_us)
                .unwrap_or(u64::MAX);
            for d in report.dispatches.iter() {
                if d.replica == r && d.at_us > e.at_us && d.at_us < until {
                    prop_assert_eq!(
                        d.breaker,
                        BreakerState::HalfOpen,
                        "request {} landed on ejected replica {} at {}us outside the probe path",
                        d.req_id,
                        r,
                        d.at_us
                    );
                }
            }
        }
    }
}

/// Validate the `fleet_bench` output schema. Runs over the file named
/// by `QT_VALIDATE_FLEET` (CI's fleet-smoke job runs the binary first);
/// skips silently when the variable is unset.
#[test]
fn env_named_fleet_json_validates() {
    let Ok(path) = std::env::var("QT_VALIDATE_FLEET") else {
        return;
    };
    let text = std::fs::read_to_string(&path).expect("BENCH_fleet.json readable");
    let v: serde_json::Value = serde_json::from_str(&text).expect("BENCH_fleet.json parses");
    assert_eq!(v["schema"].as_str(), Some("qt-fleet/bench/v1"));
    assert_eq!(v["bench"].as_str(), Some("fleet_bench"));
    let policies = v["policies"].as_array().expect("per-policy reports");
    assert!(!policies.is_empty(), "at least one policy report");
    let crashed: Vec<u64> = v["crashes"]
        .as_array()
        .map(|a| {
            a.iter()
                .filter_map(|c| c["replica"].as_u64())
                .collect()
        })
        .unwrap_or_default();
    for p in policies {
        let name = p["policy"].as_str().expect("policy name");
        assert_eq!(p["schema"].as_str(), Some("qt-fleet/report/v1"));
        assert_eq!(p["reconciles"].as_bool(), Some(true), "{name} reconciles");
        assert_eq!(
            p["unflagged_corrupt"].as_u64(),
            Some(0),
            "{name}: zero unflagged corrupt responses"
        );
        let offered = p["offered"].as_u64().expect("offered");
        assert!(offered >= 1, "{name}: bench must offer load");
        let accounted = [
            "served_primary",
            "served_degraded",
            "shed_queue_full",
            "shed_quota",
            "shed_no_replica",
            "shed_overload",
            "deadline_miss",
        ]
        .iter()
        .map(|k| p[*k].as_u64().expect(k))
        .sum::<u64>();
        assert_eq!(offered, accounted, "{name}: counters reconcile");
        for k in ["goodput", "shed_rate", "miss_rate"] {
            let x = p[k].as_f64().unwrap_or(-1.0);
            assert!((0.0..=1.0).contains(&x), "{name}: {k} in [0,1], got {x}");
        }
        for k in ["latency_p50_us", "latency_p99_us", "queue_wait_p99_us"] {
            assert!(p[k].as_f64().unwrap_or(-1.0) >= 0.0, "{name}: {k} nonnegative");
        }
        let replicas = p["replicas"].as_array().expect("per-replica stats");
        assert!(!replicas.is_empty());
        // The smoke contract: with a scheduled mid-run crash, work must
        // move between replicas and every crashed replica must be back
        // in rotation by the end of the run.
        if !crashed.is_empty() {
            let moved = p["failovers"].as_u64().unwrap_or(0)
                + p["requeued_on_crash"].as_u64().unwrap_or(0);
            assert!(moved > 0, "{name}: crash run must fail work over");
            for &r in &crashed {
                let rep = &replicas[r as usize];
                assert!(
                    rep["recoveries"].as_u64().unwrap_or(0) > 0,
                    "{name}: replica {r} recovered"
                );
                assert!(
                    rep["served_after_recovery"].as_u64().unwrap_or(0) > 0,
                    "{name}: replica {r} back in rotation"
                );
            }
        }
    }
}
