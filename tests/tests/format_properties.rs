//! Property-based tests of the number-format stack (proptest).

use proptest::prelude::*;
use qt_posit::{Posit, UnderflowPolicy, P8E1, P8E2};
use qt_quant::{ElemFormat, FakeQuant};
use qt_softfloat::{Bf16, E4M3, E5M2};

proptest! {
    #[test]
    fn posit_quantize_idempotent(x in -1e6f64..1e6) {
        let q = P8E1::quantize(x);
        prop_assert_eq!(P8E1::quantize(q), q);
    }

    #[test]
    fn posit_quantize_monotone(a in -1e5f64..1e5, b in -1e5f64..1e5) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(P8E1::quantize(lo) <= P8E1::quantize(hi));
    }

    #[test]
    fn posit_quantize_nearest(x in -5000f64..5000.0) {
        // No representable value is closer than the chosen one.
        let q = P8E1::quantize(x);
        for p in P8E1::all_finite() {
            let v = p.to_f64();
            prop_assert!((x - q).abs() <= (x - v).abs() + 1e-12,
                "x={} chose {} but {} is closer", x, q, v);
        }
    }

    #[test]
    fn posit_negation_symmetry(x in -4096f64..4096.0) {
        prop_assert_eq!(P8E1::quantize(-x), -P8E1::quantize(x));
    }

    #[test]
    fn minifloat_quantize_idempotent(x in -1e6f64..1e6) {
        let q = E4M3::quantize(x);
        prop_assert_eq!(E4M3::quantize(q), q);
        let q = E5M2::quantize(x);
        prop_assert_eq!(E5M2::quantize(q), q);
    }

    #[test]
    fn bf16_roundtrip_monotone(a in -1e30f32..1e30, b in -1e30f32..1e30) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(Bf16::quantize(lo) <= Bf16::quantize(hi));
    }

    #[test]
    fn lut_quantizer_matches_direct(x in -1e7f64..1e7) {
        for fmt in [ElemFormat::P8E1, ElemFormat::P8E2, ElemFormat::E4M3, ElemFormat::E5M2] {
            for policy in [UnderflowPolicy::RoundTiesToZero, UnderflowPolicy::Standard] {
                let fq = FakeQuant::with_policy(fmt, policy);
                prop_assert_eq!(
                    fq.quantize_scalar(x as f32),
                    fmt.quantize_scalar_with(x as f32, policy),
                    "{:?} {:?}", fmt, policy
                );
            }
        }
    }

    #[test]
    fn quantization_error_bounded_by_tapered_ulp(x in 0.001f64..4000.0) {
        // Posit relative error is bounded by 2^-(frac_bits+1) of the binade.
        let p = P8E1::from_f64(x);
        let fb = p.fraction_bits();
        let rel = ((p.to_f64() - x) / x).abs();
        let bound = libm::exp2(-(fb as f64)) ; // one ULP of the significand
        prop_assert!(rel <= bound, "x={} rel={} bound={}", x, rel, bound);
    }

    #[test]
    fn wider_posit_is_at_least_as_accurate(x in -4000f64..4000.0) {
        use qt_posit::P16E1;
        let e8 = (P8E1::quantize(x) - x).abs();
        let e16 = (P16E1::quantize(x) - x).abs();
        prop_assert!(e16 <= e8 + 1e-12);
    }

    #[test]
    fn quire_matches_exact_dot(xs in prop::collection::vec(-3f64..3.0, 1..24)) {
        use qt_posit::{FusedDot, Quire};
        let a: Vec<P8E1> = xs.iter().map(|&x| P8E1::from_f64(x)).collect();
        let b: Vec<P8E1> = xs.iter().map(|&x| P8E1::from_f64(x * 0.5 - 0.1)).collect();
        let exact: f64 = a.iter().zip(&b).map(|(p, q)| p.to_f64() * q.to_f64()).sum();
        let mut quire = Quire::<8, 1>::new();
        for (&p, &q) in a.iter().zip(&b) {
            quire.add_product(p, q);
        }
        prop_assert!((quire.to_f64() - exact).abs() < 1e-9);
        prop_assert_eq!(FusedDot::dot(&a, &b).bits(), P8E1::from_f64(exact).bits());
    }

    #[test]
    fn p8e2_covers_wider_range(e in -23i32..23) {
        let x = libm::exp2(e as f64);
        let q2 = Posit::<8, 2>::quantize(x);
        prop_assert!(q2 > 0.0, "P8E2 must represent 2^{}", e);
        if !(-12..=12).contains(&e) {
            // beyond P8E1's range, P8E2 is strictly more faithful
            let q1 = P8E1::quantize(x);
            prop_assert!((q2 - x).abs() <= (q1 - x).abs());
        }
    }
}

#[test]
fn all_p8e2_values_roundtrip() {
    for p in P8E2::all_finite() {
        let v = p.to_f64();
        assert_eq!(Posit::<8, 2>::from_f64(v).bits(), p.bits());
    }
}
