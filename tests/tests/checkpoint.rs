//! Cross-crate checkpoint/recovery properties: the qt-ckpt envelope is
//! bitwise-lossless for every storage format, every corruption is
//! detected, fallback recovers on real disks, and a killed-and-resumed
//! training run is indistinguishable from an uninterrupted one.

use proptest::prelude::*;
use qt_ckpt::{
    AmaxState, CheckpointStore, CkptError, Counters, OptState, QuantBlob, ScalerState,
    TensorBlob, TrainState,
};
use qt_datagen::{ClassifyKind, ClassifyTask};
use qt_quant::{ElemFormat, QuantScheme};
use qt_train::{AdamW, Trainer};
use qt_transformer::{Model, QuantCtx, TaskHead, TrainMode, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};

const CODE_FORMATS: [ElemFormat; 5] = [
    ElemFormat::P8E0,
    ElemFormat::P8E1,
    ElemFormat::P8E2,
    ElemFormat::E4M3,
    ElemFormat::E5M2,
];

/// A fully-populated state (every optional section present) whose tensor
/// payloads come from the property's random draws.
fn rich_state(values: &[f32], fmt: ElemFormat) -> TrainState {
    let shape = [values.len()];
    let scale = 0.5f32;
    TrainState {
        meta: vec![
            ("run".into(), "integration".into()),
            ("format".into(), fmt.name().to_string()),
        ],
        counters: Counters {
            steps: 7,
            skipped: 2,
            consecutive_skips: 1,
            rollbacks: 1,
            data_seed: 0xD5EED,
        },
        params: vec![TensorBlob::from_f32("w", &shape, values)],
        qparams: vec![QuantBlob {
            name: "w".into(),
            shape: vec![values.len() as u32],
            format: fmt.name().to_string(),
            scale_bits: scale.to_bits(),
            codes: values
                .iter()
                .map(|&x| fmt.encode_code(x * scale).expect("not Fp32"))
                .collect(),
        }],
        opt: OptState {
            kind: "adamw".into(),
            scalars: vec![
                ("lr".into(), 2e-3f32.to_bits() as u64),
                ("t".into(), 9),
            ],
            slots: vec![(
                "m".into(),
                vec![TensorBlob::from_f32("w", &shape, values)],
            )],
        },
        scaler: Some(ScalerState {
            scale_bits: 1024.0f32.to_bits(),
            growth_bits: 2.0f32.to_bits(),
            backoff_bits: 0.5f32.to_bits(),
            growth_interval: 100,
            min_bits: 1.0f32.to_bits(),
            max_bits: 65536.0f32.to_bits(),
            good_steps: 3,
            overflows: 1,
            event_capacity: 256,
            events_dropped: 0,
        }),
        amax: AmaxState {
            history_len: 16,
            entries: vec![("w".into(), values.iter().map(|x| x.abs()).collect())],
        },
        snapshot: None,
    }
}

proptest! {
    #[test]
    fn serialize_roundtrip_is_bitwise_lossless(
        values in prop::collection::vec(-1e4f32..1e4, 1..48),
        fmt_pick in 0usize..5,
    ) {
        let state = rich_state(&values, CODE_FORMATS[fmt_pick]);
        let bytes = state.to_bytes();
        let back = TrainState::from_bytes(&bytes).expect("clean bytes parse");
        // PartialEq on TrainState compares the stored bit patterns, so
        // equality here is bitwise, not approximate.
        prop_assert_eq!(&back, &state);
        // And a second serialization is byte-identical (canonical form).
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn every_single_bit_flip_is_detected(
        values in prop::collection::vec(-1e4f32..1e4, 1..32),
        fmt_pick in 0usize..5,
        bit_seed in 0u64..u64::MAX,
    ) {
        let state = rich_state(&values, CODE_FORMATS[fmt_pick]);
        let bytes = state.to_bytes();
        let bit = (bit_seed % (bytes.len() as u64 * 8)) as usize;
        let mut corrupt = bytes.clone();
        corrupt[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(
            TrainState::from_bytes(&corrupt).is_err(),
            "flipping bit {} of {} went undetected", bit, bytes.len() * 8
        );
    }

    #[test]
    fn every_truncation_is_detected(
        values in prop::collection::vec(-1e4f32..1e4, 1..32),
        fmt_pick in 0usize..5,
        cut_seed in 0u64..u64::MAX,
    ) {
        let state = rich_state(&values, CODE_FORMATS[fmt_pick]);
        let bytes = state.to_bytes();
        // Every proper prefix, from empty to all-but-one-byte.
        let cut = (cut_seed % bytes.len() as u64) as usize;
        prop_assert!(
            TrainState::from_bytes(&bytes[..cut]).is_err(),
            "truncation to {} of {} bytes went undetected", cut, bytes.len()
        );
    }
}

/// Quantized-code payloads roundtrip exactly: decode(encode(x)) is the
/// format's own quantization of x, and encode(decode(c)) is c again.
#[test]
fn code_payloads_are_lossless_for_all_formats() {
    for fmt in CODE_FORMATS {
        for raw in 0u16..=255 {
            let Some(x) = fmt.decode_code(raw) else { continue };
            if !x.is_finite() {
                continue; // exception codes (NaR / NaN / ±inf)
            }
            let re = fmt.encode_code(x).expect("not Fp32");
            let x2 = fmt.decode_code(re).expect("valid code");
            assert_eq!(
                x.to_bits(),
                x2.to_bits(),
                "{fmt:?}: code {raw:#x} -> {x} -> code {re:#x} -> {x2}"
            );
        }
    }
}

/// On-disk fallback: corrupt the newest generation, the store restores
/// the previous one and reports the rejection; corrupt all of them, the
/// store refuses to load anything.
#[test]
fn store_falls_back_through_corrupt_generations_on_disk() {
    let dir = std::env::temp_dir().join(format!("qt-int-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = CheckpointStore::open(&dir).with_keep_last(3);
    for step in [10u64, 20, 30] {
        let mut state = rich_state(&[0.25, -1.5, 3.0], ElemFormat::P8E1);
        state.counters.steps = step;
        store.save(&state).expect("save generation");
    }
    // Flip one bit in the newest file.
    let gens = store.generations();
    assert_eq!(gens.len(), 3);
    let newest = store.path_for(*gens.last().unwrap());
    let mut bytes = std::fs::read(&newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x10;
    std::fs::write(&newest, &bytes).unwrap();

    let (state, info) = store.load_latest().expect("fallback succeeds");
    assert_eq!(state.counters.steps, 20, "restored the previous generation");
    assert_eq!(info.fallback_depth, 1);
    assert_eq!(info.rejected.len(), 1);

    // Corrupt every remaining generation: load must fail, not fabricate.
    for g in store.generations() {
        let p = store.path_for(g);
        let mut b = std::fs::read(&p).unwrap();
        let mid = b.len() / 2;
        b[mid] ^= 0x04;
        std::fs::write(&p, &b).unwrap();
    }
    match store.load_latest() {
        Err(CkptError::NoCheckpoint) => {}
        other => panic!("expected NoCheckpoint after total corruption, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

fn tiny_trainer(seed: u64) -> (Trainer<AdamW>, ClassifyTask) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut cfg = TransformerConfig::mobilebert_tiny_sim();
    cfg.layers = 1;
    let task = ClassifyTask::new(ClassifyKind::Sst2, cfg.vocab, 12);
    let model = Model::new(cfg, TaskHead::Classify(2), &mut rng);
    let trainer = Trainer::new(
        model,
        QuantCtx::training(QuantScheme::posit8()),
        TrainMode::Full,
        AdamW::new(1e-3),
    );
    (trainer, task)
}

/// End-to-end crash recovery: a run checkpointed and abandoned mid-way,
/// then resumed in a fresh trainer, ends bitwise-identical to a run that
/// never stopped — same losses, same parameter bits.
#[test]
fn killed_and_resumed_run_is_bitwise_identical() {
    let dir = std::env::temp_dir().join(format!("qt-int-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let total_steps = 6usize;
    let data_seed = 77u64;

    let run = |ckpt: Option<(&CheckpointStore, usize)>, stop_after: usize| {
        let (mut trainer, task) = tiny_trainer(5);
        if let Some((store, every)) = ckpt {
            trainer = trainer.with_checkpointing(store.clone(), every, data_seed);
            trainer.resume_latest().expect("resume");
        }
        let consumed = trainer.global_step();
        let data = task.dataset(total_steps * 4, data_seed);
        let mut losses = Vec::new();
        for chunk in data.chunks(4).take(stop_after).skip(consumed) {
            let (batch, labels) = task.batch(chunk);
            losses.push(trainer.step_classify(&batch, &labels));
        }
        (trainer, losses)
    };

    // Uninterrupted reference.
    let (ref_trainer, ref_losses) = run(None, total_steps);

    // Interrupted run: checkpoint every 2 steps, "die" after step 5
    // (one step past the last checkpoint), resume in a fresh trainer.
    let store = CheckpointStore::open(&dir).with_keep_last(2);
    let (_, first_losses) = run(Some((&store, 2)), 5);
    let (resumed_trainer, tail_losses) = run(Some((&store, 2)), total_steps);

    // The resumed run replays step 5 (after the step-4 checkpoint) and
    // then the sixth step; spliced at the checkpoint boundary the loss
    // series matches the reference exactly.
    let mut spliced: Vec<f32> = first_losses[..4].to_vec();
    spliced.extend_from_slice(&tail_losses);
    assert_eq!(
        spliced.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        ref_losses.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        "loss series diverged across kill/resume"
    );
    for (name, t) in ref_trainer.model.params.iter() {
        let r = resumed_trainer.model.params.get(name);
        let a: Vec<u32> = t.data().iter().map(|x| x.to_bits()).collect();
        let b: Vec<u32> = r.data().iter().map(|x| x.to_bits()).collect();
        assert_eq!(a, b, "parameter {name} not bitwise-identical after resume");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The atomic writer never exposes a partial file under a reader's feet:
/// the destination either doesn't exist or holds complete content, and
/// no temp droppings survive success.
#[test]
fn atomic_write_leaves_no_partial_files() {
    let dir = std::env::temp_dir().join(format!("qt-int-atomic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = dir.join("nested/deeper/out.json");
    qt_ckpt::atomic_write_str(&path, "{\"ok\":true}\n").expect("atomic write");
    assert_eq!(std::fs::read_to_string(&path).unwrap(), "{\"ok\":true}\n");
    let leftovers: Vec<_> = std::fs::read_dir(path.parent().unwrap())
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Schema check for `tab09_ckpt_corruption.json`, gated on the path in
/// `QT_VALIDATE_CKPT_TABLE` (CI's crash-recovery job runs the campaign
/// first); a no-op when unset so plain `cargo test` stays hermetic.
#[test]
fn env_named_ckpt_corruption_json_validates() {
    let Ok(path) = std::env::var("QT_VALIDATE_CKPT_TABLE") else {
        return;
    };
    let text = std::fs::read_to_string(&path).expect("tab09_ckpt_corruption.json readable");
    let v: serde_json::Value = serde_json::from_str(&text).expect("JSON parses");
    let header: Vec<&str> = v["header"]
        .as_array()
        .expect("header array")
        .iter()
        .map(|h| h.as_str().expect("header strings"))
        .collect();
    assert_eq!(
        header,
        ["Format", "BER", "Bytes", "Corrupted", "Detected", "Silent", "Recovery", "Depth"],
    );
    let rows = v["rows"].as_array().expect("rows array");
    assert!(!rows.is_empty(), "campaign produced no cells");
    let col = |row: &serde_json::Value, i: usize| -> String {
        row[i].as_str().unwrap_or_default().to_string()
    };
    for row in rows {
        // Absolute-integrity columns: every corrupted file detected,
        // zero silent loads, ever.
        assert_eq!(col(row, 4), "100%", "detection below 100%: {row:?}");
        assert_eq!(col(row, 5), "0", "silent corrupt load: {row:?}");
        assert!(col(row, 2).parse::<u64>().unwrap_or(0) > 0, "empty checkpoint: {row:?}");
    }
}
