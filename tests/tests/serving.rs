//! Chaos-style integration tests for the qt-serve resilient runtime.
//!
//! * The deterministic serving simulation must produce **byte-identical**
//!   reports at any kernel pool size (`QT_THREADS` equivalents 1 and 4).
//! * A scripted fault burst must drive the circuit breaker through its
//!   full trip → degrade → half-open → recover round trip, with **zero
//!   unflagged corrupt responses** — verified by deterministically
//!   re-running every served response's final attempt and checking its
//!   health.
//! * Deadline enforcement must never surface a partial result, for
//!   arbitrary block budgets (property-based).
//! * When `QT_VALIDATE_SERVE` names a `BENCH_serve.json` (CI's
//!   serve-smoke job runs the binary first), its schema is validated.

use proptest::prelude::*;
use qt_quant::ElemFormat;
use qt_robust::{BerFaultSource, BurstFaultSource, CodeFormat, NoFaults};
use qt_serve::{
    run_sim, BreakerState, Engine, HealthSnapshot, LoadSpec, OutcomeKind, Request, Route,
    ServeConfig,
};
use qt_transformer::{Model, TaskHead, TransformerConfig};
use rand::{rngs::StdRng, Rng, SeedableRng};

fn tiny_model(seed: u64) -> Model {
    let mut rng = StdRng::seed_from_u64(seed);
    Model::new(
        TransformerConfig::mobilebert_tiny_sim(),
        TaskHead::Classify(2),
        &mut rng,
    )
}

fn p8e1() -> CodeFormat {
    CodeFormat::new(ElemFormat::P8E1).expect("P8E1 has stored codes")
}

/// The tentpole determinism claim: one simulated serving run — queueing,
/// deadlines, retries, fault injection, breaker — serializes to the same
/// bytes whether the kernels underneath run on 1 thread or 4.
#[test]
fn serve_report_is_byte_identical_across_thread_pools() {
    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 4,
        ..ServeConfig::default()
    };
    let run = |threads: usize| {
        qt_par::with_threads(threads, || {
            let engine = Engine::new(
                tiny_model(11),
                &cfg,
                Box::new(BerFaultSource::new(0xfa17, p8e1(), 1e-5)),
            );
            let spec = LoadSpec {
                rps: 2.5 * 1e6 / engine.full_pass_us() as f64,
                duration_us: 30 * engine.full_pass_us(),
                deadline_us: 3 * engine.full_pass_us(),
                seq: 8,
                seed: 21,
            };
            let requests = spec.requests(engine.model().cfg.vocab);
            let report = run_sim(&engine, &cfg, &requests, None);
            serde_json::to_string(&report.to_json()).expect("serializable")
        })
    };
    let single = run(1);
    let quad = run(4);
    assert_eq!(single, quad, "serving counters must not depend on QT_THREADS");
}

/// Scripted burst: healthy traffic, then a window of requests whose
/// weight reads are hammered at BER 2e-2, then healthy traffic again.
/// The breaker must trip, degrade, probe, and recover — and no response
/// served anywhere in the run may come from an unhealthy attempt.
#[test]
fn breaker_round_trips_under_fault_burst_with_no_unflagged_corruption() {
    let cfg = ServeConfig {
        workers: 1,
        queue_cap: 64,
        breaker: qt_serve::BreakerPolicy {
            min_samples: 4,
            window: 8,
            cooldown_requests: 8,
            probe_successes: 2,
            ..Default::default()
        },
        ..ServeConfig::default()
    };
    let fault = BurstFaultSource::new(
        BerFaultSource::new(0xb0057, p8e1(), 0.0),
        2e-2,
        40..110,
    );
    let engine = Engine::new(tiny_model(11), &cfg, Box::new(fault));
    let spec = LoadSpec {
        rps: 0.9 * 1e6 / engine.full_pass_us() as f64,
        duration_us: 200 * engine.full_pass_us(),
        deadline_us: 0,
        seq: 8,
        seed: 5,
    };
    let requests = spec.requests(engine.model().cfg.vocab);
    let report = run_sim(&engine, &cfg, &requests, None);

    assert!(report.reconciles(), "counters reconcile to offered load");
    assert!(report.breaker_trips >= 1, "burst must trip the breaker");
    assert!(report.served_degraded > 0, "tripped traffic serves degraded");
    let seq: Vec<(BreakerState, BreakerState)> = report
        .transitions
        .iter()
        .map(|t| (t.from, t.to))
        .collect();
    assert!(
        seq.contains(&(BreakerState::Closed, BreakerState::Open)),
        "trip recorded: {seq:?}"
    );
    assert!(
        seq.contains(&(BreakerState::Open, BreakerState::HalfOpen)),
        "cooldown expires into probing: {seq:?}"
    );
    assert!(
        seq.contains(&(BreakerState::HalfOpen, BreakerState::Closed)),
        "clean probes restore the 8-bit path: {seq:?}"
    );
    assert_eq!(
        report.transitions.last().map(|t| t.to),
        Some(BreakerState::Closed),
        "healthy tail traffic closes the breaker again"
    );

    // Zero unflagged corrupt responses: every served response's final
    // attempt is deterministically replayable — re-run it and assert the
    // engine saw healthy traffic. (Fault injection is a pure function of
    // (request id, attempt index), so this is exact, not statistical.)
    let by_id: std::collections::HashMap<u64, &Request> =
        requests.iter().map(|r| (r.id, r)).collect();
    let mut replayed = 0;
    for resp in &report.responses {
        if !resp.outcome.is_served() {
            continue;
        }
        let req = by_id[&resp.id];
        let primary = resp.outcome == OutcomeKind::ServedPrimary;
        let again = engine.attempt(req, resp.attempts - 1, primary, u64::MAX);
        assert!(again.completed);
        assert_eq!(
            again.health.nonfinite_in + again.health.nonfinite_out,
            0,
            "request {} was served from an unhealthy attempt",
            resp.id
        );
        assert_eq!(again.label, resp.label, "served label replays exactly");
        replayed += 1;
    }
    assert!(replayed > 0, "burst run must serve something to audit");
}

/// A crash-safe snapshot captured after the burst run reloads with the
/// same counters it was saved with.
#[test]
fn health_snapshot_survives_disk_round_trip() {
    let cfg = ServeConfig::default();
    let engine = Engine::new(tiny_model(3), &cfg, Box::new(NoFaults));
    let spec = LoadSpec {
        rps: 1e6 / (2.0 * engine.full_pass_us() as f64),
        duration_us: 10 * engine.full_pass_us(),
        deadline_us: 0,
        seq: 6,
        seed: 9,
    };
    let requests = spec.requests(engine.model().cfg.vocab);
    let report = run_sim(&engine, &cfg, &requests, None);
    let snap = HealthSnapshot {
        breaker_state: BreakerState::Closed,
        breaker_trips: report.breaker_trips,
        unhealthy_rate: 0.0,
        offered: report.offered,
        served_primary: report.served_primary,
        served_degraded: report.served_degraded,
        shed_queue_full: report.shed_queue_full,
        deadline_miss: report.deadline_miss,
    };
    let dir = std::env::temp_dir().join("qt_serving_it_snap");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("health.json");
    snap.save(&path).unwrap();
    assert_eq!(HealthSnapshot::load(&path), Ok(snap));
    std::fs::remove_dir_all(&dir).ok();
}

fn shared_engine() -> &'static Engine {
    static ENGINE: std::sync::OnceLock<Engine> = std::sync::OnceLock::new();
    ENGINE.get_or_init(|| Engine::new(tiny_model(11), &ServeConfig::default(), Box::new(NoFaults)))
}

// Deadline enforcement never surfaces a partial result: for any block
// budget, the request either completes (label present, full pass
// executed) or misses (no label at all), and a cancelled pass never
// executes more blocks than its budget.
proptest! {
    #[test]
    fn deadlines_never_yield_partial_results(
        budget_blocks in 0u64..8,
        seq in 1usize..12,
        seed in 0u64..1000,
    ) {
        let engine = shared_engine();
        let cfg = ServeConfig::default();
        let blocks = engine.model().blocks_per_forward();
        let mut rng = StdRng::seed_from_u64(seed);
        let vocab = engine.model().cfg.vocab;
        let tokens: Vec<usize> = (0..seq).map(|_| rng.gen_range(0..vocab)).collect();
        let req = Request::new(seed, tokens)
            .with_deadline(budget_blocks * cfg.per_block_us);
        let out = engine.process(&req, 0, |_| Route::Primary, |_, _| {});
        if budget_blocks >= blocks {
            prop_assert_eq!(out.response.outcome, OutcomeKind::ServedPrimary);
            prop_assert!(out.response.label.is_some());
            prop_assert_eq!(out.blocks, blocks);
        } else {
            prop_assert_eq!(out.response.outcome, OutcomeKind::DeadlineMiss);
            prop_assert!(out.response.label.is_none(), "no partial result");
            prop_assert!(out.blocks <= budget_blocks, "budget respected");
        }
        // Regardless of outcome: the response accounts for the request.
        prop_assert_eq!(out.response.id, req.id);
        prop_assert!(out.response.finish_us >= req.arrival_us);
    }
}

/// Validate the `serve_bench` output schema. Runs over the file named by
/// `QT_VALIDATE_SERVE` (CI's serve-smoke job runs the binary first);
/// skips silently when the variable is unset.
#[test]
fn env_named_serve_json_validates() {
    let Ok(path) = std::env::var("QT_VALIDATE_SERVE") else {
        return;
    };
    let text = std::fs::read_to_string(&path).expect("BENCH_serve.json readable");
    let v: serde_json::Value = serde_json::from_str(&text).expect("BENCH_serve.json parses");
    assert_eq!(v["schema"].as_str(), Some("qt-serve/report/v1"));
    assert_eq!(v["bench"].as_str(), Some("serve_bench"));
    assert_eq!(v["reconciles"].as_bool(), Some(true));
    let offered = v["offered"].as_u64().expect("offered");
    let served_primary = v["served_primary"].as_u64().expect("served_primary");
    let served_degraded = v["served_degraded"].as_u64().expect("served_degraded");
    let shed = v["shed_queue_full"].as_u64().expect("shed_queue_full");
    let miss = v["deadline_miss"].as_u64().expect("deadline_miss");
    assert!(offered >= 1, "bench must offer load");
    assert_eq!(
        offered,
        served_primary + served_degraded + shed + miss,
        "counters reconcile"
    );
    for k in ["goodput", "shed_rate", "miss_rate", "degraded_fraction"] {
        let x = v[k].as_f64().unwrap_or(-1.0);
        assert!((0.0..=1.0).contains(&x), "{k} in [0,1], got {x}");
    }
    for k in ["latency_p50_us", "latency_p99_us", "queue_wait_p99_us"] {
        assert!(v[k].as_f64().unwrap_or(-1.0) >= 0.0, "{k} nonnegative");
    }
    assert!(v["breaker_trips"].as_u64().is_some());
    assert!(
        v["breaker_transitions"].as_array().is_some(),
        "transition log present"
    );
    // Mode contract from the workflow: overload runs must shed or miss,
    // light runs must do neither.
    match std::env::var("QT_SERVE_MODE").as_deref() {
        Ok("overload") => assert!(
            shed > 0 && miss > 0,
            "overload run must both shed and miss (shed {shed}, miss {miss})"
        ),
        Ok("light") => assert_eq!(
            (shed, miss),
            (0, 0),
            "light run must neither shed nor miss"
        ),
        _ => {}
    }
}
