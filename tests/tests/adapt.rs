//! Chaos tests for the qt-adapt adaptive control plane wired into the
//! qt-fleet simulation.
//!
//! * A **gray failure** — a replica that silently runs N× slow while
//!   passing every health gate — must be caught by the windowed
//!   latency-outlier detector and ejected within a bounded number of
//!   detection windows, after which the fleet's tail latency recovers
//!   to within 20% of a no-fault baseline.
//! * The whole adaptive surface (brownout ladder walk, CoDel drops,
//!   ejections, scale events) must serialize **byte-identically**
//!   whether the kernels underneath run on 1 thread or 4.
//! * Under sustained overload, the priority-tiered brownout ladder must
//!   deliver strictly better paid-tier availability than baseline
//!   indiscriminate shedding — while the replay audit still reports
//!   zero unflagged corruption.
//! * When `QT_VALIDATE_ADAPT` names a `BENCH_adapt.json` (CI's
//!   adapt-smoke job runs `fleet_bench` first), its schema is
//!   validated; `QT_ADAPT_MODE` selects overload/quiet expectations.

use qt_adapt::{AutoscaleConfig, BrownoutConfig, CodelConfig, GrayConfig};
use qt_fleet::{
    audit_unflagged_corruption, run_fleet, ArrivalShape, FleetConfig, FleetLoadSpec, FleetReport,
    FleetRequest, MemSnapStore, ReplicaSpec,
};
use qt_quant::ElemFormat;
use qt_robust::{BerFaultSource, CodeFormat, FaultSource, NoFaults};
use qt_transformer::{Model, TaskHead, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};

fn tiny_model() -> Model {
    static MODEL: std::sync::OnceLock<Model> = std::sync::OnceLock::new();
    MODEL
        .get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(11);
            Model::new(
                TransformerConfig::mobilebert_tiny_sim(),
                TaskHead::Classify(2),
                &mut rng,
            )
        })
        .clone()
}

fn pass_us() -> u64 {
    tiny_model().blocks_per_forward() * ReplicaSpec::BASE_BLOCK_US
}

fn no_faults(n: usize) -> Vec<Box<dyn FaultSource + Send + Sync>> {
    (0..n)
        .map(|_| -> Box<dyn FaultSource + Send + Sync> { Box::new(NoFaults) })
        .collect()
}

/// Exact nearest-rank p99 over served-response latencies arriving at or
/// after `from_us` (sheds excluded: they carry no latency).
fn served_p99_from(report: &FleetReport, from_us: u64) -> u64 {
    let mut lat: Vec<u64> = report
        .responses
        .iter()
        .filter(|r| r.outcome.is_served() && r.finish_us - r.latency_us >= from_us)
        .map(|r| r.latency_us)
        .collect();
    assert!(
        lat.len() >= 32,
        "need a populated tail to compare p99s, got {} samples",
        lat.len()
    );
    lat.sort_unstable();
    lat[(lat.len() - 1) * 99 / 100]
}

/// The gray-chaos fleet: three equal posit8 replicas under HealthAware
/// routing (which estimates backlog from *nominal* speed — exactly the
/// gray blind spot). Replica 1 silently runs 4× slow from `4*pass` when
/// `slow` is set. Its long breaker cooldown makes post-ejection probe
/// traffic a sub-1% trickle, so the fleet p99 genuinely reflects the
/// healthy majority.
fn gray_config(slow: bool) -> FleetConfig {
    let pass = pass_us();
    let mut straggler = ReplicaSpec::new(ElemFormat::P8E1);
    straggler.breaker.cooldown_requests = 600;
    if slow {
        straggler = straggler.with_gray_slowdown(4 * pass, 4);
    }
    FleetConfig {
        replicas: vec![
            ReplicaSpec::new(ElemFormat::P8E1),
            straggler,
            ReplicaSpec::new(ElemFormat::P8E1),
        ],
        adapt_every_us: 16 * pass,
        gray: Some(GrayConfig {
            factor: 1.5,
            min_samples: 3,
            eject_consecutive: 2,
            rejoin_consecutive: 2,
        }),
        ..FleetConfig::default()
    }
}

fn gray_load(seed: u64) -> Vec<FleetRequest> {
    let pass = pass_us();
    FleetLoadSpec {
        rps: 1.2 * 1e6 / pass as f64,
        duration_us: 160 * pass,
        shape: ArrivalShape::Constant,
        deadline_us: 0,
        seed,
        ..FleetLoadSpec::default()
    }
    .requests(tiny_model().cfg.vocab)
}

fn gray_run(slow: bool) -> FleetReport {
    run_fleet(
        &tiny_model(),
        &gray_config(slow),
        &gray_load(23),
        no_faults(3),
        Box::new(MemSnapStore::new()),
        None,
    )
}

/// The headline gray-failure claim: the straggler is ejected within a
/// bounded number of detection windows of the slowdown's onset, and the
/// post-ejection fleet p99 lands within 20% of a no-fault baseline over
/// the same arrival stream.
#[test]
fn gray_straggler_is_ejected_and_fleet_p99_recovers() {
    let pass = pass_us();
    let baseline = gray_run(false);
    let chaos = gray_run(true);
    assert!(baseline.reconciles() && chaos.reconciles());
    assert_eq!(baseline.gray_ejections, 0, "no-fault run must not eject");
    assert!(chaos.gray_ejections >= 1, "the straggler must be caught");
    assert_eq!(
        chaos.replicas[1].stats.gray_ejections, chaos.gray_ejections,
        "only the slow replica is ever ejected"
    );

    // Ejected within K windows: onset at 4*pass, windows every 16*pass,
    // two consecutive outlier windows to trip — allow two more for the
    // diluted onset window and sampling jitter.
    let eject_at = chaos
        .adapt_events
        .iter()
        .find(|e| e.kind == "gray_eject")
        .expect("eject recorded in the audit trail")
        .at_us;
    assert!(
        eject_at <= 4 * pass + 4 * 16 * pass,
        "ejection took too long: {eject_at}us"
    );

    // Tail recovery: compare like-for-like windows (arrivals after the
    // ejection instant) so pre-ejection damage doesn't count.
    let chaos_p99 = served_p99_from(&chaos, eject_at);
    let base_p99 = served_p99_from(&baseline, eject_at);
    assert!(
        chaos_p99 * 5 <= base_p99 * 6,
        "post-ejection p99 {chaos_p99}us not within 20% of baseline {base_p99}us"
    );
}

/// Re-running the gray chaos must reproduce the identical ejection
/// instant — the detector is driven off the virtual clock, not wall
/// time.
#[test]
fn gray_ejection_is_deterministic_across_replays() {
    let a = gray_run(true);
    let b = gray_run(true);
    let instants = |r: &FleetReport| -> Vec<(u64, &str)> {
        r.adapt_events.iter().map(|e| (e.at_us, e.kind)).collect()
    };
    assert_eq!(instants(&a), instants(&b));
    assert_eq!(a.gray_ejections, b.gray_ejections);
}

/// The full adaptive surface — ladder walk, CoDel drops, gray
/// ejections, autoscale events — serializes byte-identically at any
/// kernel pool size. Overload plus a straggler plus a cold-boot
/// exercises every adaptive code path in one run.
#[test]
fn adaptive_surface_is_byte_identical_across_thread_pools() {
    let pass = pass_us();
    let run = |threads: usize| {
        qt_par::with_threads(threads, || {
            let mut straggler = ReplicaSpec::new(ElemFormat::P8E1).with_gray_slowdown(8 * pass, 4);
            straggler.breaker.cooldown_requests = 64;
            let cfg = FleetConfig {
                replicas: vec![
                    ReplicaSpec::new(ElemFormat::P8E1),
                    straggler,
                    ReplicaSpec::new(ElemFormat::P8E1),
                ],
                adapt_every_us: 8 * pass,
                codel: Some(CodelConfig {
                    target_us: 2 * pass,
                    interval_us: 4 * pass,
                }),
                brownout: Some(BrownoutConfig::default()),
                gray: Some(GrayConfig {
                    factor: 1.5,
                    min_samples: 3,
                    eject_consecutive: 2,
                    rejoin_consecutive: 2,
                }),
                autoscale: Some(AutoscaleConfig {
                    min_replicas: 2,
                    max_replicas: 3,
                    up_consecutive: 1,
                    cold_start_us: 4 * pass,
                    ..AutoscaleConfig::default()
                }),
                ..FleetConfig::default()
            };
            let reqs = FleetLoadSpec {
                rps: 3.0 * 1e6 / pass as f64,
                duration_us: 48 * pass,
                shape: ArrivalShape::Constant,
                deadline_us: 0,
                ..FleetLoadSpec::default()
            }
            .requests(tiny_model().cfg.vocab);
            let report = run_fleet(
                &tiny_model(),
                &cfg,
                &reqs,
                no_faults(3),
                Box::new(MemSnapStore::new()),
                None,
            );
            assert!(report.reconciles());
            serde_json::to_string(&report.to_json()).expect("serializable")
        })
    };
    let single = run(1);
    let quad = run(4);
    assert_eq!(single, quad, "adaptive surface must not depend on QT_THREADS");
}

/// The overload acceptance claim: under sustained ~4× overload with a
/// BER fault environment, the brownout ladder buys the paid tier
/// strictly better availability than baseline indiscriminate shedding —
/// and the replay audit still certifies zero unflagged corruption.
#[test]
fn brownout_beats_baseline_shedding_for_paid_tier_under_overload() {
    let pass = pass_us();
    let model = tiny_model();
    let mk_cfg = |adaptive: bool| FleetConfig {
        replicas: vec![ReplicaSpec::new(ElemFormat::P8E1); 2],
        adapt_every_us: if adaptive { 2 * pass } else { 0 },
        codel: adaptive.then(|| CodelConfig {
            target_us: 2 * pass,
            interval_us: 4 * pass,
        }),
        brownout: adaptive.then(BrownoutConfig::default),
        ..FleetConfig::default()
    };
    let faults = || -> Vec<Box<dyn FaultSource + Send + Sync>> {
        let codec = CodeFormat::new(ElemFormat::P8E1).expect("P8E1 has stored codes");
        vec![
            Box::new(BerFaultSource::new(0xfa17, codec, 2e-3)),
            Box::new(NoFaults),
        ]
    };
    let reqs = FleetLoadSpec {
        rps: 4.0 * 1e6 / pass as f64,
        duration_us: 40 * pass,
        shape: ArrivalShape::Constant,
        deadline_us: 0,
        ..FleetLoadSpec::default()
    }
    .requests(model.cfg.vocab);
    let paid_availability = |report: &FleetReport| -> f64 {
        let paid: Vec<_> = report
            .responses
            .iter()
            .filter(|r| r.user % 4 < 2)
            .collect();
        assert!(!paid.is_empty());
        paid.iter().filter(|r| r.outcome.is_served()).count() as f64 / paid.len() as f64
    };

    let mut availability = [0.0f64; 2];
    for (i, adaptive) in [false, true].into_iter().enumerate() {
        let cfg = mk_cfg(adaptive);
        let report = run_fleet(
            &model,
            &cfg,
            &reqs,
            faults(),
            Box::new(MemSnapStore::new()),
            None,
        );
        assert!(report.reconciles());
        assert_eq!(
            audit_unflagged_corruption(&model, &cfg, &reqs, faults(), &report),
            0,
            "adaptive={adaptive}: overload must never smuggle corruption out"
        );
        availability[i] = paid_availability(&report);
        if adaptive {
            assert!(report.brownout_sheds > 0, "the ladder engaged");
            assert_ne!(report.brownout_peak, "normal");
        }
    }
    assert!(
        availability[1] > availability[0],
        "brownout paid availability {} must beat baseline {}",
        availability[1],
        availability[0]
    );
}

/// Validate the `fleet_bench` adaptive scoreboard schema. Runs over the
/// file named by `QT_VALIDATE_ADAPT` (CI's adapt-smoke job runs the
/// binary first); skips silently when unset. `QT_ADAPT_MODE` layers
/// scenario expectations: `overload` (ladder walked, reserve booted) or
/// `quiet` (plane armed but idle).
#[test]
fn env_named_adapt_json_validates() {
    let Ok(path) = std::env::var("QT_VALIDATE_ADAPT") else {
        return;
    };
    let mode = std::env::var("QT_ADAPT_MODE").unwrap_or_default();
    let text = std::fs::read_to_string(&path).expect("BENCH_adapt.json readable");
    let v: serde_json::Value = serde_json::from_str(&text).expect("BENCH_adapt.json parses");
    assert_eq!(v["schema"].as_str(), Some("qt-adapt/bench/v1"));
    assert_eq!(v["bench"].as_str(), Some("fleet_bench"));
    assert!(v["adapt_interval_ms"].as_u64().unwrap_or(0) >= 1);
    let policies = v["policies"].as_array().expect("per-policy sections");
    assert!(!policies.is_empty());
    let rungs = [
        "normal",
        "shed_batch",
        "degrade_e4m3",
        "degrade_bf16",
        "reject_best_effort",
    ];
    for p in policies {
        let name = p["policy"].as_str().expect("policy name");
        assert!(p["arrival_seed"].as_u64().is_some(), "{name}: arrival seed");
        let peak = p["brownout_peak"].as_str().expect("peak rung");
        assert!(rungs.contains(&peak), "{name}: unknown rung {peak:?}");
        for k in [
            "codel_drops",
            "brownout_sheds",
            "shed_overload",
            "economy_served",
            "gray_ejections",
            "scale_ups",
            "scale_downs",
        ] {
            assert!(p[k].as_u64().is_some(), "{name}: {k} is a counter");
        }
        for tier in ["paid", "best_effort", "batch"] {
            let t = &p["tiers"][tier];
            let offered = t["offered"].as_u64().expect("offered");
            let served = t["served"].as_u64().expect("served");
            assert!(served <= offered, "{name}/{tier}: served bounded by offered");
            let a = t["availability"].as_f64().unwrap_or(-1.0);
            assert!((0.0..=1.0).contains(&a), "{name}/{tier}: availability in [0,1]");
        }
        // The audit trail: monotone one-rung-at-a-time ladder walk, and
        // every event timestamped on the virtual clock in order.
        let events = p["events"].as_array().expect("adapt audit trail");
        let mut sev = 0i64;
        let mut last_at = 0u64;
        for e in events {
            let at = e["at_us"].as_u64().expect("event time");
            assert!(at >= last_at, "{name}: events in virtual-time order");
            last_at = at;
            let kind = e["kind"].as_str().expect("event kind");
            if kind.starts_with("brownout") {
                let d = e["detail"].as_f64().expect("rung severity") as i64;
                assert_eq!((d - sev).abs(), 1, "{name}: one rung per transition");
                sev = d;
            }
        }
        match mode.as_str() {
            "overload" => {
                assert_ne!(peak, "normal", "{name}: overload must walk the ladder");
                assert!(
                    p["brownout_sheds"].as_u64().unwrap_or(0) > 0,
                    "{name}: overload must shed via the ladder"
                );
                assert!(
                    p["scale_ups"].as_u64().unwrap_or(0) >= 1,
                    "{name}: overload must boot the reserve"
                );
                let paid = p["tiers"]["paid"]["availability"].as_f64().unwrap_or(0.0);
                let batch = p["tiers"]["batch"]["availability"].as_f64().unwrap_or(1.0);
                assert!(
                    paid > batch,
                    "{name}: the ladder must protect paid ({paid}) over batch ({batch})"
                );
            }
            "quiet" => {
                assert_eq!(peak, "normal", "{name}: healthy run stays Normal");
                for k in [
                    "codel_drops",
                    "brownout_sheds",
                    "shed_overload",
                    "gray_ejections",
                    "scale_ups",
                    "scale_downs",
                ] {
                    assert_eq!(
                        p[k].as_u64(),
                        Some(0),
                        "{name}: healthy run must keep {k} at zero"
                    );
                }
                assert!(events.is_empty(), "{name}: no adapt events on a healthy run");
            }
            _ => {}
        }
    }
}
