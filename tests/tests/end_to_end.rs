//! End-to-end integration: quantized training and inference across the
//! whole stack (datagen → transformer → quant → train).

use qt_datagen::{ClassifyKind, ClassifyTask, SpanTask};
use qt_quant::{QuantScheme, ScalingMode};
use qt_train::{evaluate_classify, evaluate_span_f1, AdamW, Trainer};
use qt_transformer::{
    LoraConfig, Model, QuantCtx, TaskHead, TrainMode, TransformerConfig,
};
use rand::{rngs::StdRng, SeedableRng};

fn tiny_cfg() -> TransformerConfig {
    let mut cfg = TransformerConfig::mobilebert_tiny_sim();
    cfg.layers = 2;
    cfg
}

#[test]
fn posit8_training_with_approx_softmax_learns() {
    let cfg = tiny_cfg();
    let task = ClassifyTask::new(ClassifyKind::Sst2, cfg.vocab, 16);
    let mut rng = StdRng::seed_from_u64(1);
    let model = Model::new(cfg, TaskHead::Classify(2), &mut rng);
    let scheme = QuantScheme::posit8_approx();
    let mut trainer = Trainer::new(
        model,
        QuantCtx::training(scheme),
        TrainMode::Full,
        AdamW::new(3e-3),
    );
    let data = task.dataset(40 * 16, 2);
    for chunk in data.chunks(16) {
        let (batch, labels) = task.batch(chunk);
        trainer.step_classify(&batch, &labels);
    }
    let eval = task.dataset(128, 99);
    let batches: Vec<_> = eval.chunks(32).map(|c| task.batch(c)).collect();
    let acc = evaluate_classify(&trainer.model, &QuantCtx::inference(scheme), &batches);
    assert!(acc > 75.0, "8-bit training should beat chance by far: {acc}");
}

#[test]
fn ptq_posit8_tracks_fp32_on_trained_model() {
    let cfg = tiny_cfg();
    let task = SpanTask::new(cfg.vocab, 16);
    let mut rng = StdRng::seed_from_u64(3);
    let model = Model::new(cfg, TaskHead::Span, &mut rng);
    let mut trainer = Trainer::new(
        model,
        QuantCtx::training(QuantScheme::fp32()),
        TrainMode::Full,
        AdamW::new(2e-3),
    );
    let data = task.dataset(50 * 16, 4);
    for chunk in data.chunks(16) {
        let (batch, spans) = task.batch(chunk);
        trainer.step_span(&batch, &spans);
    }
    let eval = task.dataset(96, 99);
    let f1_fp32 = evaluate_span_f1(
        &trainer.model,
        &QuantCtx::inference(QuantScheme::fp32()),
        &task,
        &eval,
        32,
    );
    let f1_p8 = evaluate_span_f1(
        &trainer.model,
        &QuantCtx::inference(QuantScheme::posit8()),
        &task,
        &eval,
        32,
    );
    assert!(f1_fp32 > 50.0, "model should have learned: {f1_fp32}");
    assert!(
        (f1_fp32 - f1_p8).abs() < 15.0,
        "posit8 PTQ should track fp32: {f1_fp32} vs {f1_p8}"
    );
}

#[test]
fn lora_8bit_finetuning_adapts_frozen_backbone() {
    let cfg = tiny_cfg();
    let task = ClassifyTask::new(ClassifyKind::Qnli, cfg.vocab, 16);
    let mut rng = StdRng::seed_from_u64(5);
    // pretrain briefly
    let model = Model::new(cfg, TaskHead::Classify(2), &mut rng);
    let mut pre = Trainer::new(
        model,
        QuantCtx::training(QuantScheme::fp32()),
        TrainMode::Full,
        AdamW::new(2e-3),
    );
    for chunk in task.dataset(30 * 16, 6).chunks(16) {
        let (batch, labels) = task.batch(chunk);
        pre.step_classify(&batch, &labels);
    }
    let mut model = pre.model;
    model.add_lora(LoraConfig::mobilebert_default(), &mut rng);
    let before = model.params.get("enc.0.attn.wq").clone();

    let scheme = QuantScheme::posit8().with_scaling(ScalingMode::PerTensorAmax { history: 8 });
    let mut ft = Trainer::new(
        model,
        QuantCtx::training(scheme),
        TrainMode::Lora,
        AdamW::new(2e-3),
    );
    for chunk in task.dataset(20 * 16, 7).chunks(16) {
        let (batch, labels) = task.batch(chunk);
        ft.step_classify(&batch, &labels);
    }
    // backbone untouched, adapters moved
    assert_eq!(ft.model.params.get("enc.0.attn.wq").data(), before.data());
    assert!(ft.model.params.get("enc.0.attn.wq.lora_b").amax() > 0.0);
    assert!(ft.steps() > 0);
}

#[test]
fn whisper_style_pipeline_transcribes() {
    use qt_datagen::AsrTask;
    use qt_train::evaluate_asr_wer;
    let mut cfg = TransformerConfig::whisper_tiny_sim();
    cfg.layers = 1;
    let task = AsrTask::new(cfg.vocab, 16, 4);
    let mut rng = StdRng::seed_from_u64(8);
    let model = Model::new(cfg, TaskHead::LmTied, &mut rng);
    let mut trainer = Trainer::new(
        model,
        QuantCtx::training(QuantScheme::fp32()),
        TrainMode::Full,
        AdamW::new(2e-3),
    );
    for chunk in task.dataset(300 * 8, 9).chunks(8) {
        let (enc, dec, targets) = task.batch(chunk);
        trainer.step_seq2seq(&enc, &dec, &targets);
    }
    let eval = task.dataset(24, 99);
    let wer = evaluate_asr_wer(
        &trainer.model,
        &QuantCtx::inference(QuantScheme::fp32()),
        &task,
        &eval,
        24,
    );
    assert!(wer < 75.0, "seq2seq should be learning to transcribe: WER {wer}");
}
