//! Cross-crate checks of the paper's headline claims at the scale this
//! reproduction runs at (see EXPERIMENTS.md for the full mapping).

use qt_accel::{
    Accelerator, Datapath, ExpUnit, RecipUnit, SynthesisPoint, SystolicSim, Tech40, VectorUnit,
};
use qt_posit::approx::ExpApprox;
use qt_quant::{ElemFormat, QuantScheme, SoftmaxKind};
use qt_tensor::Tensor;
use qt_transformer::Softmax;

#[test]
fn claim_posit8_has_best_decimal_accuracy_near_one() {
    use qt_posit::P8E1;
    use qt_softfloat::accuracy::decimal_accuracy_of_rounding;
    use qt_softfloat::{E4M3, E5M2};
    let worst = |round: &dyn Fn(f64) -> f64| {
        (1..100)
            .map(|i| decimal_accuracy_of_rounding(1.0 + i as f64 / 100.0, round))
            .fold(f64::INFINITY, f64::min)
    };
    let p = worst(&|x| P8E1::quantize(x));
    let e4 = worst(&|x| E4M3::quantize(x));
    let e5 = worst(&|x| E5M2::quantize(x));
    assert!(p > e4 && e4 > e5, "Figure 4 ordering: {p} {e4} {e5}");
}

#[test]
fn claim_approx_softmax_masks_correctly_only_with_threshold() {
    let x = Tensor::from_vec(vec![2.0, 1.5, -30.0, -30.0, -30.0, -30.0], &[1, 6]);
    let with = Softmax::new(SoftmaxKind::posit_full()).forward(&x);
    let without = Softmax::new(SoftmaxKind::PositApprox {
        approx_exp: true,
        approx_recip: true,
        exp: ExpApprox::raw(),
    })
    .forward(&x);
    let leak_with: f32 = with.data()[2..].iter().sum();
    let leak_without: f32 = without.data()[2..].iter().sum();
    assert_eq!(leak_with, 0.0, "thresholded exp must zero masked tokens");
    assert!(
        leak_without > 0.05,
        "raw approximation must leak attention: {leak_without}"
    );
}

#[test]
fn claim_gradients_underflow_posit8_without_scaling() {
    // Typical activation-gradient magnitudes (Figure 10) are far below
    // Posit8's minpos.
    let grads = [1e-5f32, 3e-6, 8e-7];
    for g in grads {
        assert_eq!(ElemFormat::P8E1.quantize_scalar(g), 0.0);
        assert_eq!(ElemFormat::E4M3.quantize_scalar(g), 0.0);
    }
    // Per-tensor scaling (amax → 64) rescues them.
    let amax = 1e-5f32;
    let scale = qt_quant::AmaxTracker::scale_from_amax(amax, ElemFormat::P8E1);
    for g in grads {
        let rescued = ElemFormat::P8E1.quantize_scalar(g * scale) / scale;
        assert!(
            (rescued - g).abs() / g < 0.06,
            "g={g} rescued={rescued} (scale {scale})"
        );
    }
}

#[test]
fn claim_hybrid_fp8_mac_supports_both_operand_formats() {
    use qt_softfloat::{E4M3, E5M2, E5M3};
    // Every operand value of either FP8 format is exact in the E5M3 MAC.
    for b in 0u16..=255 {
        let a = E4M3::from_bits(b).to_f64();
        if a.is_finite() {
            assert_eq!(E5M3::quantize(a), a);
        }
        let c = E5M2::from_bits(b).to_f64();
        if c.is_finite() {
            assert_eq!(E5M3::quantize(c), c);
        }
    }
}

#[test]
fn claim_hardware_savings_hold_together() {
    // All four headline hardware claims must hold simultaneously in the
    // cost model (abstract + Table 8 + §4.2).
    let tech = Tech40::default();
    let pt = SynthesisPoint::nominal();

    // exp / recip unit savings
    let exp_red = 1.0
        - ExpUnit::posit16_approx().synth(&tech, pt).area_mm2
            / ExpUnit::bf16_exact().synth(&tech, pt).area_mm2;
    assert!(exp_red > 0.5, "exp unit: {exp_red}");
    let recip_red = 1.0
        - RecipUnit::posit16_approx().synth(&tech, pt).area_mm2
            / RecipUnit::bf16_divider().synth(&tech, pt).area_mm2;
    assert!(recip_red > 0.75, "recip unit: {recip_red}");

    // vector unit savings (Table 8)
    let vec_red = 1.0
        - VectorUnit::posit8_style(16).synth(&tech, pt).area_mm2
            / VectorUnit::fp8_style(16).synth(&tech, pt).area_mm2;
    assert!((0.2..0.5).contains(&vec_red), "vector unit: {vec_red}");

    // accelerator-level: both 8-bit designs beat BF16; FP8 beats Posit8
    let total = |d| Accelerator::new(16, d).synth(&tech, pt).total().area_mm2;
    let bf = total(Datapath::Bf16);
    let p8 = total(Datapath::Posit8);
    let f8 = total(Datapath::HybridFp8);
    assert!(p8 < 0.8 * bf && f8 < 0.8 * bf);
    assert!(f8 < p8);
}

#[test]
fn claim_posit_softmax_is_faster_on_the_vector_unit() {
    let p8 = SystolicSim::new(Accelerator::new(16, Datapath::Posit8));
    let fp8 = SystolicSim::new(Accelerator::new(16, Datapath::HybridFp8));
    assert!(p8.softmax_cycles(128, 128) < fp8.softmax_cycles(128, 128));
}

#[test]
fn claim_8bit_lora_needs_no_float_merge() {
    // Equation 7: the merged weight is representable in the 8-bit format
    // itself (quant of the sum), so the GEMM consumes 8-bit operands.
    use qt_quant::FakeQuant;
    use rand::{rngs::StdRng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(1);
    let fq = FakeQuant::new(ElemFormat::P8E1);
    let w0 = Tensor::randn(&[16, 16], &mut rng).mul_scalar(0.2);
    let a = Tensor::randn(&[16, 4], &mut rng).mul_scalar(0.1);
    let b = Tensor::randn(&[4, 16], &mut rng).mul_scalar(0.1);
    let merged = fq.quantize(&fq.quantize(&w0).add(&fq.quantize(&a).matmul(&fq.quantize(&b))));
    // every element of the merged weight is on the posit grid
    for &x in merged.data() {
        assert_eq!(ElemFormat::P8E1.quantize_scalar(x), x);
    }
}

#[test]
fn claim_scheme_zoo_matches_paper_recipes() {
    let fp8 = QuantScheme::fp8();
    assert_eq!(fp8.fwd, ElemFormat::E4M3);
    assert_eq!(fp8.bwd, ElemFormat::E5M2);
    let p8 = QuantScheme::posit8_approx();
    assert!(matches!(p8.softmax, SoftmaxKind::PositApprox { .. }));
    assert_eq!(ElemFormat::P8E1.amax_target(), 64.0); // §5.1
}
