//! Memory-integrity tests: the qt-shield SEC-DED plane, alone and
//! wired into the qt-fleet simulation.
//!
//! * The (72,64) codec must **correct every possible single-bit flip**
//!   (data, Hamming check, or overall parity) and **detect — never
//!   miscorrect — every possible double-bit flip** (property-based plus
//!   an exhaustive pair sweep).
//! * A shielded fleet under persistent storage rot must serve **zero
//!   silently corrupt responses** while the background scrubber handles
//!   ≥99% of injected flips without request-visible errors.
//! * A double-bit detection must quarantine the region and the repair
//!   path must restore the codes **bit-exactly** from the f32 masters.
//! * The whole integrity surface (counters, events, report JSON) must
//!   serialize **byte-identically** at any kernel pool size.
//! * When `QT_VALIDATE_INTEGRITY` names a `BENCH_integrity.json` (CI's
//!   integrity-smoke job runs `integrity_bench` first), its schema is
//!   validated; `QT_INTEGRITY_MODE` selects scrub/quiet expectations.

use proptest::prelude::*;
use qt_fleet::{
    audit_unflagged_corruption, run_fleet, ArrivalShape, FleetConfig, FleetLoadSpec, FleetReport,
    MemSnapStore, ReplicaSpec, ShieldConfig,
};
use qt_quant::ElemFormat;
use qt_robust::{FaultSource, NoFaults};
use qt_serve::{pristine_codes, shield_model};
use qt_shield::{decode, encode, flip, Decode, CODE_BITS};
use qt_transformer::{Model, TaskHead, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};

fn tiny_model() -> Model {
    static MODEL: std::sync::OnceLock<Model> = std::sync::OnceLock::new();
    MODEL
        .get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(11);
            Model::new(
                TransformerConfig::mobilebert_tiny_sim(),
                TaskHead::Classify(2),
                &mut rng,
            )
        })
        .clone()
}

fn pass_us() -> u64 {
    tiny_model().blocks_per_forward() * ReplicaSpec::BASE_BLOCK_US
}

fn no_faults(n: usize) -> Vec<Box<dyn FaultSource + Send + Sync>> {
    (0..n)
        .map(|_| -> Box<dyn FaultSource + Send + Sync> { Box::new(NoFaults) })
        .collect()
}

// ---------------------------------------------------------------------
// SEC-DED codec properties
// ---------------------------------------------------------------------

proptest! {
    #[test]
    fn secded_clean_words_decode_clean(word in 0u64..=u64::MAX) {
        prop_assert_eq!(decode(word, encode(word)), Decode::Clean);
    }

    // Every one of the 72 bit positions round-trips: flip it, decode,
    // and the codec names the exact position and restores the pair.
    #[test]
    fn secded_corrects_every_single_bit_flip(
        word in 0u64..=u64::MAX,
        bit in 0u8..CODE_BITS as u8,
    ) {
        let check = encode(word);
        let (fw, fc) = flip(word, check, bit);
        match decode(fw, fc) {
            Decode::Corrected { bit: b, word: w, check: c } => {
                prop_assert_eq!(b, bit);
                prop_assert_eq!(w, word);
                prop_assert_eq!(c, check);
            }
            other => prop_assert!(false, "bit {} decoded as {:?}", bit, other),
        }
    }

    // Any two distinct flipped bits are detected — and crucially never
    // miscorrected into a third, silently wrong, codeword.
    #[test]
    fn secded_detects_every_double_bit_flip(
        word in 0u64..=u64::MAX,
        b1 in 0u8..CODE_BITS as u8,
        off in 1u8..CODE_BITS as u8,
    ) {
        // A nonzero modular offset guarantees two distinct positions.
        let b2 = (b1 + off) % CODE_BITS as u8;
        let check = encode(word);
        let (fw, fc) = flip(word, check, b1);
        let (fw, fc) = flip(fw, fc, b2);
        prop_assert_eq!(decode(fw, fc), Decode::Uncorrectable);
    }
}

/// The proptest pair sampler is probabilistic; this sweep is not: all
/// 72·71/2 distinct bit pairs over a handful of words, every one
/// detected as uncorrectable.
#[test]
fn secded_double_flip_sweep_is_exhaustive() {
    for word in [0u64, u64::MAX, 0xdead_beef_cafe_f00d, 0x5555_5555_5555_5555] {
        let check = encode(word);
        for b1 in 0..CODE_BITS as u8 {
            for b2 in (b1 + 1)..CODE_BITS as u8 {
                let (fw, fc) = flip(word, check, b1);
                let (fw, fc) = flip(fw, fc, b2);
                assert_eq!(
                    decode(fw, fc),
                    Decode::Uncorrectable,
                    "pair ({b1},{b2}) on {word:#x} escaped detection"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Quarantine and bit-exact repair (qt-serve × qt-shield × qt-quant)
// ---------------------------------------------------------------------

/// A double-bit upset quarantines its region; repairing from the f32
/// masters restores the exact codes [`shield_model`] protected — the
/// re-quantization is bit-reproducible, not merely close.
#[test]
fn double_bit_quarantine_repair_is_bit_exact() {
    let model = tiny_model();
    let mut shield = shield_model(&model, ElemFormat::P8E1).expect("posit8 has a code plane");
    let name0 = model.params.names()[0].clone();
    let pristine_all: Vec<Vec<u16>> = shield.regions().iter().map(|r| r.codes()).collect();
    let before = pristine_all[0].clone();
    assert_eq!(
        pristine_codes(&model, ElemFormat::P8E1, &name0).as_deref(),
        Some(&before[..]),
        "pristine re-quantization must reproduce the protected codes"
    );

    shield.inject(0, 0, 3);
    shield.inject(0, 0, 41);
    let out = shield.scrub(shield.total_words() as usize);
    assert_eq!(out.quarantined, vec![0], "double-bit must quarantine");
    assert!(shield.has_quarantine());

    shield.repair_region(0, &before);
    assert!(!shield.has_quarantine());
    assert!(
        shield.regions()[0].matches_exact(&before),
        "repair must be bit-exact"
    );
    assert_eq!(shield.silent_errors(|i| pristine_all[i].clone()), 0);
}

// ---------------------------------------------------------------------
// Shielded fleet under storage rot
// ---------------------------------------------------------------------

fn rot_config(ber: f64) -> FleetConfig {
    let pass = pass_us();
    FleetConfig {
        replicas: vec![
            ReplicaSpec::new(ElemFormat::P8E1),
            ReplicaSpec::new(ElemFormat::P8E1),
        ],
        shield: Some(ShieldConfig {
            scrub_every_us: 2 * pass,
            storage_ber: ber,
            storage_seed: 0x0507,
            ..ShieldConfig::default()
        }),
        ..FleetConfig::default()
    }
}

fn rot_run(ber: f64, seed: u64) -> (FleetConfig, Vec<qt_fleet::FleetRequest>, FleetReport) {
    let pass = pass_us();
    let cfg = rot_config(ber);
    let reqs = FleetLoadSpec {
        rps: 1.0 * 1e6 / pass as f64,
        duration_us: 60 * pass,
        shape: ArrivalShape::Constant,
        deadline_us: 0,
        seed,
        ..FleetLoadSpec::default()
    }
    .requests(tiny_model().cfg.vocab);
    let report = run_fleet(
        &tiny_model(),
        &cfg,
        &reqs,
        no_faults(2),
        Box::new(MemSnapStore::new()),
        None,
    );
    (cfg, reqs, report)
}

/// Persistent storage rot at a rate that lands tens of flips: the
/// scrubber must handle ≥99% of them (counting each quarantined word's
/// two-plus bits as handled by its repair), every request must still be
/// served, and the replay audit must find zero silently corrupt
/// primary responses.
#[test]
fn storage_rot_is_scrubbed_with_zero_silent_corruption() {
    let (cfg, reqs, report) = rot_run(2e-5, 29);
    assert!(report.reconciles());
    assert!(
        report.storage_flips > 20,
        "rot rate must actually bite: {} flips",
        report.storage_flips
    );
    assert!(report.scrub_corrected > 0);
    let handled = report.scrub_corrected + 2 * report.quarantines;
    let coverage = handled as f64 / report.storage_flips as f64;
    assert!(
        coverage >= 0.99,
        "scrub coverage {coverage:.4}: {} corrected + {} quarantines of {} flips",
        report.scrub_corrected,
        report.quarantines,
        report.storage_flips
    );
    assert_eq!(
        report.quarantines, report.repairs,
        "every quarantine must finish its repair"
    );
    assert_eq!(
        report.offered,
        report.served_primary + report.served_degraded,
        "rot must never cost a response"
    );
    assert_eq!(
        audit_unflagged_corruption(&tiny_model(), &cfg, &reqs, no_faults(2), &report),
        0,
        "no served-primary response may replay corrupt"
    );
}

/// The integrity surface — flip counts, scrub corrections, quarantine
/// and repair events, the full report JSON — is byte-identical whether
/// the kernels underneath run on 1 thread or 4.
#[test]
fn integrity_surface_is_byte_identical_across_thread_pools() {
    let run = |threads: usize| {
        qt_par::with_threads(threads, || {
            let (_, _, report) = rot_run(2e-5, 31);
            serde_json::to_string(&report.to_json()).unwrap()
        })
    };
    let a = run(1);
    let b = run(4);
    assert_eq!(a, b, "shielded fleet must not observe the pool size");
}

// ---------------------------------------------------------------------
// CI artifact validation
// ---------------------------------------------------------------------

/// Validates the `BENCH_integrity.json` schema of the artifact named by
/// `QT_VALIDATE_INTEGRITY` (CI's integrity-smoke job runs the binary
/// first); skips silently when unset. `QT_INTEGRITY_MODE` layers
/// scenario expectations: `scrub` (rot injected and handled) or `quiet`
/// (shield armed over clean storage, zero activity).
#[test]
fn env_named_integrity_json_validates() {
    let Ok(path) = std::env::var("QT_VALIDATE_INTEGRITY") else {
        return;
    };
    let mode = std::env::var("QT_INTEGRITY_MODE").unwrap_or_default();
    let text = std::fs::read_to_string(&path).expect("BENCH_integrity.json readable");
    let v: serde_json::Value = serde_json::from_str(&text).expect("BENCH_integrity.json parses");
    assert_eq!(v["schema"].as_str(), Some("qt-shield/bench/v1"));
    assert_eq!(v["bench"].as_str(), Some("integrity_bench"));
    assert!(v["protected_bits_per_replica"].as_u64().unwrap_or(0) > 0);
    assert!(v["scrub_windows"].as_u64().unwrap_or(0) > 0);
    let sweep = v["ber_sweep"].as_array().expect("ber sweep table");
    assert!(!sweep.is_empty());
    for row in sweep {
        assert!(row["ber"].as_f64().is_some());
        assert!(row["flips"].as_u64().is_some());
        assert!(row["silent_without_protection"].as_u64().is_some());
    }
    let legs = v["legs"].as_array().expect("per-leg sections");
    assert_eq!(legs.len(), 2, "protected + quiet legs");
    for leg in legs {
        let name = leg["leg"].as_str().expect("leg name");
        assert!(leg["arrival_seed"].as_u64().is_some(), "{name}: seed");
        assert_eq!(
            leg["unflagged_corrupt"].as_u64(),
            Some(0),
            "{name}: a served-primary response replayed corrupt"
        );
        assert!(
            leg["offered"].as_u64().unwrap_or(0)
                >= leg["served_primary"].as_u64().unwrap_or(0)
                    + leg["served_degraded"].as_u64().unwrap_or(0),
            "{name}: served more than offered"
        );
        let tel = leg["telemetry"].as_object().expect("telemetry totals");
        for key in ["scrub.corrected", "scrub.quarantines", "scrub.repairs"] {
            assert!(tel.contains_key(key), "{name}: missing counter {key}");
        }
        assert_eq!(
            tel["scrub.corrected"].as_u64(),
            leg["scrub_corrected"].as_u64(),
            "{name}: telemetry and report must agree on corrections"
        );
    }
    let protected = &legs[0];
    let quiet = &legs[1];
    assert_eq!(protected["leg"].as_str(), Some("protected"));
    assert_eq!(quiet["leg"].as_str(), Some("quiet"));
    match mode.as_str() {
        "scrub" => {
            let flips = protected["storage_flips"].as_u64().unwrap_or(0);
            assert!(flips > 0, "scrub mode: no rot was injected");
            assert!(protected["scrub_corrected"].as_u64().unwrap_or(0) > 0);
            let cov = protected["scrub_coverage"].as_f64().unwrap_or(0.0);
            assert!(cov >= 0.99, "scrub mode: coverage {cov:.4} < 0.99");
            assert_eq!(
                protected["quarantines"].as_u64(),
                protected["repairs"].as_u64(),
                "scrub mode: unfinished repairs"
            );
        }
        "quiet" => {
            for key in [
                "storage_flips",
                "scrub_corrected",
                "read_corrected",
                "scrub_uncorrectable",
                "quarantines",
                "repairs",
            ] {
                assert_eq!(
                    quiet[key].as_u64(),
                    Some(0),
                    "quiet mode: {key} nonzero on a rot-free run"
                );
            }
        }
        _ => {}
    }
}
