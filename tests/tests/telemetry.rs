//! Integration tests for the qt-telemetry observability plane.
//!
//! * The whole telemetry surface — windowed series, SLO burn-rate
//!   alerts, request span trees, flight dumps — must serialize
//!   **byte-identically** at any kernel pool size (`QT_THREADS`
//!   equivalents 1 and 4), because every timestamp lives on the
//!   simulation's virtual clock.
//! * Window aggregates are a pure function of the event *multiset*:
//!   re-ordering the event stream (any interleaving a scheduler could
//!   produce) must yield identical windows (property-based).
//! * Every request traced through a chaotic fleet run — corruption,
//!   a crash, failovers, hedges — closes into a complete span tree:
//!   exactly one root, every attempt linked, no orphans.
//! * The flight recorder honours its ring bound under any load and its
//!   dumps report truncation faithfully.
//! * When `QT_VALIDATE_TELEMETRY` names a `BENCH_telemetry.json` (CI's
//!   telemetry-smoke job runs `fleet_bench` first), its schema is
//!   validated; `QT_TELEMETRY_MODE=crash|healthy` additionally pins
//!   whether burn-rate alerts fired and a crash flight dump exists.

use proptest::prelude::*;
use qt_fleet::{
    run_fleet_observed, ArrivalShape, FleetConfig, FleetLoadSpec, MemSnapStore, ReplicaSpec,
    RouterPolicy,
};
use qt_quant::ElemFormat;
use qt_robust::{BerFaultSource, CodeFormat, CrashSchedule, FaultSource, NoFaults};
use qt_telemetry::{
    alerts_jsonl, telemetry_report, timeseries_jsonl, FlightRecorder, Scope, SeriesKind,
    SloSpec, TelemetryConfig, TelemetryHandle, TelemetrySink, WindowedSeries,
};
use qt_transformer::{Model, TaskHead, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};

fn tiny_model() -> Model {
    static MODEL: std::sync::OnceLock<Model> = std::sync::OnceLock::new();
    MODEL
        .get_or_init(|| {
            let mut rng = StdRng::seed_from_u64(11);
            Model::new(
                TransformerConfig::mobilebert_tiny_sim(),
                TaskHead::Classify(2),
                &mut rng,
            )
        })
        .clone()
}

/// The same 3-replica chaos fleet the qt-fleet tests use: a posit8 node
/// in a fault environment, a clean E4M3 node with a mid-run outage, and
/// a slow but immune BF16 node.
fn chaos_config() -> FleetConfig {
    let pass = 6 * ReplicaSpec::BASE_BLOCK_US;
    FleetConfig {
        replicas: vec![
            ReplicaSpec::new(ElemFormat::P8E1),
            ReplicaSpec::new(ElemFormat::E4M3)
                .with_crashes(CrashSchedule::single(8 * pass, 10 * pass)),
            ReplicaSpec::new(ElemFormat::Bf16),
        ],
        policy: RouterPolicy::HealthAware,
        snapshot_every_us: 2 * pass,
        ..FleetConfig::default()
    }
}

fn chaos_faults() -> Vec<Box<dyn FaultSource + Send + Sync>> {
    let codec = CodeFormat::new(ElemFormat::P8E1).expect("P8E1 has stored codes");
    vec![
        Box::new(BerFaultSource::new(0xfa17, codec, 2e-3)),
        Box::new(NoFaults),
        Box::new(NoFaults),
    ]
}

fn chaos_load(seed: u64, rps_passes: f64, passes: u64) -> Vec<qt_fleet::FleetRequest> {
    let pass = 6 * ReplicaSpec::BASE_BLOCK_US;
    FleetLoadSpec {
        rps: rps_passes * 1e6 / pass as f64,
        duration_us: passes * pass,
        shape: ArrivalShape::Bursty {
            burst_len_us: 4 * pass,
            burst_mult: 3.0,
        },
        period_us: 12 * pass,
        deadline_us: 6 * pass,
        seed,
        ..FleetLoadSpec::default()
    }
    .requests(tiny_model().cfg.vocab)
}

/// A telemetry sink tuned for the short chaos horizon: 10 ms windows
/// and burn-rate windows shrunk by 1e-4 so the fast rule spans ~30 ms
/// of virtual time. No flight directory — dumps stay in memory.
fn chaos_sink(flight_cap: usize) -> TelemetryHandle {
    TelemetrySink::handle(
        TelemetryConfig {
            interval_us: 10_000,
            slos: vec![SloSpec::availability(0.999).with_window_scale(1e-4)],
            flight_capacity: flight_cap,
            seed: 7,
            ..TelemetryConfig::default()
        },
        3,
    )
}

fn observed_chaos_run(seed: u64, flight_cap: usize) -> (qt_fleet::FleetReport, TelemetryHandle) {
    let tel = chaos_sink(flight_cap);
    let report = run_fleet_observed(
        &tiny_model(),
        &chaos_config(),
        &chaos_load(seed, 2.0, 24),
        chaos_faults(),
        Box::new(MemSnapStore::new()),
        None,
        Some(&tel),
    );
    (report, tel)
}

/// The tentpole determinism claim for the observability plane: the
/// full telemetry surface serializes to the same bytes whether the
/// kernels underneath run on 1 thread or 4.
#[test]
fn telemetry_artifacts_are_byte_identical_across_thread_pools() {
    let run = |threads: usize| {
        qt_par::with_threads(threads, || {
            let (report, tel) = observed_chaos_run(77, 64);
            let sink = tel.borrow();
            (
                serde_json::to_string(&report.to_json()).expect("serializable"),
                serde_json::to_string(&telemetry_report(&sink)).expect("serializable"),
                timeseries_jsonl(&sink),
                alerts_jsonl(&sink),
                sink.dumps()
                    .iter()
                    .map(|d| serde_json::to_string(&d.to_json()).unwrap())
                    .collect::<Vec<_>>(),
            )
        })
    };
    let single = run(1);
    let quad = run(4);
    assert_eq!(single.0, quad.0, "fleet report must not depend on QT_THREADS");
    assert_eq!(single.1, quad.1, "telemetry scoreboard must not depend on QT_THREADS");
    assert_eq!(single.2, quad.2, "series JSONL must not depend on QT_THREADS");
    assert_eq!(single.3, quad.3, "alert stream must not depend on QT_THREADS");
    assert_eq!(single.4, quad.4, "flight dumps must not depend on QT_THREADS");
}

/// Every request admitted to a chaotic fleet — corruption retries,
/// a crash, failovers, hedges — must close into one complete span
/// tree, and the fleet-level counters must reconcile with the report.
#[test]
fn chaos_run_closes_every_span_tree_and_reconciles_counters() {
    let (report, tel) = observed_chaos_run(13, 64);
    assert!(report.reconciles());
    let sink = tel.borrow();

    let book = sink.book();
    assert_eq!(
        book.len() as u64,
        report.offered,
        "one trace per admitted request"
    );
    assert_eq!(
        book.complete_count(),
        book.len(),
        "every trace closed with a complete span tree"
    );
    for resp in &report.responses {
        let trace = book.get(resp.id).expect("trace exists");
        assert!(trace.is_complete(), "request {}: {trace:?}", resp.id);
        let attempts = trace
            .spans
            .iter()
            .filter(|s| s.name == "attempt")
            .count();
        assert_eq!(
            attempts as u32,
            resp.attempts,
            "request {}: one attempt span per engine attempt",
            resp.id
        );
        assert_eq!(
            trace.outcome.as_deref(),
            Some(resp.outcome.name()),
            "request {}: trace closed with the report's outcome",
            resp.id
        );
    }

    let total = |name: &str| {
        sink.series_get(Scope::Fleet, name)
            .map(|s| s.counter_total())
            .unwrap_or(0)
    };
    assert_eq!(total("arrivals"), report.offered);
    assert_eq!(total("responses"), report.offered);
    assert_eq!(
        total("served"),
        report.served_primary + report.served_degraded
    );
    assert_eq!(total("crashes"), 1);
    assert_eq!(total("recoveries"), 1);
    assert!(
        sink.dumps().iter().any(|d| d.replica == 1 && d.reason == "crash"),
        "the crashed replica left a black box"
    );
}

/// Re-ordering the event stream must not change any window: counters
/// and histograms are commutative aggregates, and gauges resolve by
/// greatest timestamp (values here derive from the timestamp, so equal
/// times carry equal writes). This is the "any interleaving" guarantee
/// the thread-pool test samples, proven over arbitrary streams.
type Events = Vec<(u64, u8, u16)>;

fn event_stream(seed: u64, n: usize) -> (Events, Events) {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    let orig: Vec<(u64, u8, u16)> = (0..n)
        .map(|_| {
            (
                rng.gen_range(0..200_000u64),
                rng.gen_range(0..3u8),
                rng.gen_range(1..500u16),
            )
        })
        .collect();
    let mut shuffled = orig.clone();
    for i in (1..shuffled.len()).rev() {
        let j = rng.gen_range(0..=i);
        shuffled.swap(i, j);
    }
    (orig, shuffled)
}

fn replay(evs: &Events) -> qt_telemetry::SeriesSet {
    let mut set = qt_telemetry::SeriesSet::new();
    for &(at, kind, x) in evs {
        match kind {
            0 => set.counter_add(Scope::Fleet, "c", at, x as u64, 1_000, 64),
            1 => set.observe(Scope::Fleet, "h", at, x as f32, 1_000, 64),
            _ => set.gauge_set(Scope::Fleet, "g", at, at as f64, 1_000, 64),
        }
    }
    set
}

proptest! {
    #[test]
    fn window_aggregates_are_permutation_invariant(
        seed in 0u64..1_000_000,
        n in 1usize..100,
    ) {
        let (orig, shuffled) = event_stream(seed, n);
        let a = replay(&orig);
        let b = replay(&shuffled);
        prop_assert_eq!(a.len(), b.len());
        for ((ka, sa), (kb, sb)) in a.iter().zip(b.iter()) {
            prop_assert_eq!(ka, kb);
            prop_assert_eq!(
                serde_json::to_string(&sa.to_json()).unwrap(),
                serde_json::to_string(&sb.to_json()).unwrap(),
                "series {} diverged under permutation", ka
            );
        }
    }

    #[test]
    fn flight_ring_never_exceeds_capacity(
        cap in 1usize..32,
        n in 0u64..200,
    ) {
        let mut rec = FlightRecorder::new(cap);
        for t in 0..n {
            rec.record(t, "tick", vec![("n".to_string(), t as f64)]);
            prop_assert!(rec.len() <= cap);
        }
        let dump = rec.dump(0, n, "test");
        prop_assert_eq!(dump.events.len() as u64, n.min(cap as u64));
        prop_assert_eq!(dump.dropped, n.saturating_sub(cap as u64));
        // The ring keeps the *newest* events.
        if let Some(last) = dump.events.last() {
            prop_assert_eq!(last.at_us, n - 1);
        }
    }
}

/// A chaotic run with a tiny ring still bounds every recorder and
/// reports truncation in its dumps.
#[test]
fn fleet_flight_recorders_stay_bounded() {
    let (_report, tel) = observed_chaos_run(5, 4);
    let sink = tel.borrow();
    for rec in sink.recorders() {
        assert!(rec.len() <= 4);
    }
    for dump in sink.dumps() {
        assert!(dump.events.len() <= 4, "dump ring bound: {dump:?}");
        assert_eq!(
            dump.dropped > 0,
            dump.events.len() == 4,
            "a full ring under chaos load must have evicted"
        );
    }
    assert!(!sink.dumps().is_empty(), "the crash took a dump");
}

/// Window series keep only `retain` windows and count evictions.
#[test]
fn windowed_series_honours_retention() {
    let mut s = WindowedSeries::new(SeriesKind::Counter, 100, 8);
    for t in 0..5_000u64 {
        s.counter_add(t, 1);
    }
    assert_eq!(s.len(), 8, "retention bound holds");
    assert_eq!(s.evicted(), 42, "50 windows touched, 8 kept");
}

/// Validate the `fleet_bench` telemetry scoreboard schema. Runs over
/// the file named by `QT_VALIDATE_TELEMETRY` (CI's telemetry-smoke job
/// runs the binary first); skips silently when the variable is unset.
/// `QT_TELEMETRY_MODE=crash` additionally requires burn-rate alert
/// fires and a crash flight dump; `QT_TELEMETRY_MODE=healthy` requires
/// zero alert transitions and zero crash dumps.
#[test]
fn env_named_telemetry_json_validates() {
    let Ok(path) = std::env::var("QT_VALIDATE_TELEMETRY") else {
        return;
    };
    let text = std::fs::read_to_string(&path).expect("BENCH_telemetry.json readable");
    let v: serde_json::Value = serde_json::from_str(&text).expect("BENCH_telemetry.json parses");
    assert_eq!(v["schema"].as_str(), Some("qt-telemetry/bench/v1"));
    assert_eq!(v["bench"].as_str(), Some("fleet_bench"));
    let policies = v["policies"].as_array().expect("per-policy sections");
    assert!(!policies.is_empty(), "at least one policy section");
    for p in policies {
        let name = p["policy"].as_str().expect("policy name");
        assert_eq!(p["schema"].as_str(), Some("qt-telemetry/report/v1"));
        assert!(
            p["interval_us"].as_u64().unwrap_or(0) > 0,
            "{name}: positive window interval"
        );
        let series = p["series"].as_array().expect("series list");
        assert!(!series.is_empty(), "{name}: series were recorded");
        for s in series {
            assert!(s["name"].as_str().is_some(), "{name}: series are named");
            let kind = s["kind"].as_str().expect("series kind");
            assert!(
                ["counter", "gauge", "hist"].contains(&kind),
                "{name}: known series kind, got {kind}"
            );
            assert!(
                s["windows"].as_array().is_some(),
                "{name}: series carry windows"
            );
        }
        let traces = &p["traces"];
        assert_eq!(
            traces["requests"].as_u64(),
            traces["complete"].as_u64(),
            "{name}: every request trace is complete"
        );
        for a in p["alerts"].as_array().expect("alert list") {
            assert!(a["slo"].as_str().is_some());
            assert!(a["rule"].as_str().is_some());
            assert!(a["at_us"].as_u64().is_some());
        }
    }
    let fires = v["alert_fires"].as_u64().expect("alert fire count");
    let crash_dumps = policies
        .iter()
        .flat_map(|p| p["flight"]["dumps"].as_array().cloned().unwrap_or_default())
        .filter(|d| d["reason"].as_str() == Some("crash"))
        .count();
    match std::env::var("QT_TELEMETRY_MODE").as_deref() {
        Ok("crash") => {
            assert!(fires > 0, "outage run must fire a burn-rate alert");
            assert!(crash_dumps > 0, "outage run must leave a crash black box");
        }
        Ok("healthy") => {
            assert_eq!(fires, 0, "healthy run must not fire alerts");
            assert_eq!(crash_dumps, 0, "healthy run must not dump on crash");
        }
        _ => {}
    }
}
