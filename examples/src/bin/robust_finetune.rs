//! Robust 8-bit fine-tuning, end to end: inject a guaranteed gradient
//! overflow, watch a statically-scaled trainer diverge, then recover with
//! AMP-style dynamic loss scaling + snapshot/rollback, and read the
//! per-site numerical-health counters the quantization context collected.
//!
//! ```bash
//! cargo run --release -p qt-examples --bin robust_finetune
//! ```

use qt_datagen::{ClassifyKind, ClassifyTask};
use qt_quant::{ElemFormat, NonFinitePolicy, QuantScheme, ScalingMode};
use qt_robust::{corrupt_model, BitFlipInjector, CodeFormat};
use qt_train::{evaluate_classify, AdamW, LossScaler, Trainer};
use qt_transformer::{Model, QuantCtx, TaskHead, TrainMode, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let mut cfg = TransformerConfig::mobilebert_tiny_sim();
    cfg.layers = 2;
    let task = ClassifyTask::new(ClassifyKind::Sst2, cfg.vocab, 16);
    let data = task.dataset(30 * 16, 2);
    // An infinite static loss scale is a guaranteed overflow injection:
    // every backward pass sees non-finite gradients until the scale drops.
    let scheme = QuantScheme::posit8()
        .with_scaling(ScalingMode::LossScale(f32::INFINITY))
        .with_nonfinite(NonFinitePolicy::Saturate);

    let run = |label: &str, dynamic: bool| {
        let mut rng = StdRng::seed_from_u64(7);
        let model = Model::new(cfg.clone(), TaskHead::Classify(2), &mut rng);
        let mut trainer = Trainer::new(
            model,
            QuantCtx::training(scheme),
            TrainMode::Full,
            AdamW::new(3e-3),
        );
        if dynamic {
            trainer = trainer
                .with_dynamic_scaling(
                    // Start at the injected infinite scale; one overflow
                    // sanitizes + clamps it back into a workable range.
                    LossScaler::new(f32::INFINITY).with_bounds(1.0, 65536.0),
                )
                .with_snapshots(8, 16);
        }
        for chunk in data.chunks(16) {
            let (batch, labels) = task.batch(chunk);
            trainer.step_classify(&batch, &labels);
        }
        println!(
            "{label:<28} applied {:>2} steps, skipped {:>2}, rollbacks {}, final scale {:.1e}",
            trainer.steps(),
            trainer.skipped(),
            trainer.rollbacks(),
            trainer.loss_scale(),
        );
        trainer
    };

    println!("== overflow injection: static vs dynamic loss scaling ==");
    run("static LossScale(inf)", false);
    let trainer = run("dynamic LossScaler + snapshots", true);

    let eval = task.dataset(128, 99);
    let batches: Vec<_> = eval.chunks(32).map(|c| task.batch(c)).collect();
    let ctx = QuantCtx::inference(scheme);
    let acc = evaluate_classify(&trainer.model, &ctx, &batches);
    println!("\nrecovered model accuracy: {acc:.1}%");

    println!("\n== per-site numerical health (top saturators) ==");
    let mut report = ctx.health_report();
    report.sort_by(|a, b| b.1.saturation_rate().total_cmp(&a.1.saturation_rate()));
    for (site, h) in report.iter().take(5) {
        println!("  {site:<24} {h}");
    }
    let total = ctx.health_total();
    println!("  {:<24} {total}", "TOTAL");

    // Finally, flip bits in the stored weight codes (SRAM soft errors)
    // and re-score: the saturating guard keeps inference finite.
    println!("\n== bit-flip injection on stored Posit(8,1) codes ==");
    let codec = CodeFormat::new(ElemFormat::P8E1).expect("storage format");
    let mut injector = BitFlipInjector::new(42);
    for rate in [1e-4, 1e-3] {
        let (corrupted, report) = corrupt_model(&trainer.model, codec, rate, &mut injector);
        let ctx = QuantCtx::inference(scheme);
        let acc = evaluate_classify(&corrupted, &ctx, &batches);
        println!(
            "  rate {rate:.0e}: {} flips over {} words, {:.0}% detectable, accuracy {acc:.1}%",
            report.bits_flipped,
            report.words_hit,
            100.0 * report.detection_rate(),
        );
    }
}
