//! Quickstart: a tour of the 8-bit number formats and the posit bit-trick
//! approximations.
//!
//! ```bash
//! cargo run --release -p qt-examples --bin quickstart
//! ```

use qt_posit::approx::{fast_reciprocal, fast_sigmoid, ExpApprox};
use qt_posit::{FusedDot, Quire, P8E1};
use qt_quant::{ElemFormat, FakeQuant};
use qt_softfloat::{Bf16, E4M3, E5M2};

fn main() {
    println!("— formats —");
    for x in [0.1234f64, 1.0, std::f64::consts::PI, 250.0, 5000.0, 1e-4] {
        println!(
            "x = {x:>10}: Posit(8,1) → {:<10} E4M3 → {:<8} E5M2 → {:<8} BF16 → {}",
            P8E1::quantize(x),
            E4M3::quantize(x),
            E5M2::quantize(x),
            Bf16::quantize(x as f32),
        );
    }

    println!("\n— posit anatomy (Figure 1 of the paper) —");
    let p = P8E1::from_f64(0.171875);
    println!(
        "0.171875 encodes as {:08b} (sign 0, regime 001 → k=-2, exp 1, frac 011) with {} fraction bits",
        p.bits(),
        p.fraction_bits()
    );

    println!("\n— tapered precision —");
    for x in [1.05f64, 10.5, 100.5, 1000.5] {
        let q = P8E1::quantize(x);
        println!(
            "quantizing {x:>7}: posit → {q:>6} (rel err {:.2}%), fraction bits: {}",
            100.0 * ((q - x) / x).abs(),
            P8E1::from_f64(x).fraction_bits()
        );
    }

    println!("\n— bitwise approximations (§3.3) —");
    for x in [-2.0f64, -0.5, 0.0, 1.0, 3.0] {
        let s = fast_sigmoid(P8E1::from_f64(x));
        println!(
            "sigmoid({x:>4}) ≈ {:<8} (exact {:.4})",
            s.to_f64(),
            1.0 / (1.0 + (-x).exp())
        );
    }
    for x in [0.75f64, 2.0, 3.0, 5.0] {
        let r = fast_reciprocal(P8E1::from_f64(x));
        println!("1/{x} ≈ {:<8} (exact {:.4}) — pure NOT gates", r.to_f64(), 1.0 / x);
    }
    let exp = ExpApprox::PAPER_BEST;
    for x in [-5.0f64, -3.0, -1.0, -0.25] {
        println!(
            "exp({x:>5}) ≈ {:<8} (exact {:.4}) — θ={}, ε={}",
            exp.eval_f64(x),
            x.exp(),
            exp.theta,
            exp.epsilon
        );
    }

    println!("\n— fused dot product (quire, §3.2) —");
    let a: Vec<P8E1> = [1.5, 2.0, -0.25, 0.01]
        .iter()
        .map(|&x| P8E1::from_f64(x))
        .collect();
    let b: Vec<P8E1> = [2.0, 0.5, 4.0, 100.0]
        .iter()
        .map(|&x| P8E1::from_f64(x))
        .collect();
    let mut q = Quire::<8, 1>::new();
    for (&x, &y) in a.iter().zip(&b) {
        q.add_product(x, y);
    }
    println!(
        "exact accumulation {}, rounded once to posit: {}",
        q.to_f64(),
        FusedDot::dot(&a, &b)
    );

    println!("\n— tensor fake-quantization —");
    let fq = FakeQuant::new(ElemFormat::P8E1);
    let t = qt_tensor::Tensor::from_vec(vec![0.1, 1.05, -3.3, 900.0, 1e-6], &[5]);
    println!("input:  {:?}", t.data());
    println!("posit8: {:?}", fq.quantize(&t).data());
}
