//! Sizing an edge accelerator (§7): compare the BF16 / Posit8 / FP8
//! datapaths with the gate-level cost model, then run a Transformer
//! layer's GEMMs through the cycle-level systolic simulator.
//!
//! ```bash
//! cargo run --release -p qt-examples --bin accelerator_sizing
//! ```

use qt_accel::{Accelerator, Datapath, SynthesisPoint, SystolicSim, Tech40};

fn main() {
    let tech = Tech40::default();
    let pt = SynthesisPoint::nominal();

    println!("16x16 accelerators at 200 MHz, 0.9 V (40 nm model):");
    for d in Datapath::ALL {
        let r = Accelerator::new(16, d).synth(&tech, pt);
        let t = r.total();
        println!(
            "  {:<11} array {:.2} mm² + vector {:.3} mm² + codecs {:.3} mm² + SRAM {:.2} mm² = {:.2} mm², {:.1} mW",
            d.name(),
            r.array.area_mm2,
            r.vector.area_mm2,
            r.codecs.area_mm2,
            r.sram.area_mm2,
            t.area_mm2,
            t.power_mw
        );
    }

    // One encoder layer's GEMMs at hidden=256, seq=128:
    // QKV+output projections (4 of [128,256]x[256,256]) and an FFN
    // ([128,256]x[256,1024], [128,1024]x[1024,256]).
    println!("\ncycle-level simulation of one encoder layer (hidden 256, seq 128):");
    for d in [Datapath::Bf16, Datapath::Posit8, Datapath::HybridFp8] {
        let sim = SystolicSim::new(Accelerator::new(16, d));
        let mut cycles = 0u64;
        let mut sram = 0u64;
        let mut energy = 0.0;
        for (m, k, n) in [
            (128, 256, 256),
            (128, 256, 256),
            (128, 256, 256),
            (128, 256, 256),
            (128, 256, 1024),
            (128, 1024, 256),
        ] {
            let g = sim.gemm(m, k, n);
            cycles += g.cycles;
            sram += g.sram_read_bytes + g.sram_write_bytes;
            energy += sim.gemm_energy_nj(&g, &tech, pt);
        }
        // softmax over 8 heads x 128x128 scores
        let sm = sim.softmax_cycles(8 * 128, 128);
        println!(
            "  {:<11} GEMMs {:>8} cycles, softmax {:>6} cycles, SRAM {:>5.1} KiB, energy {:>7.1} nJ",
            d.name(),
            cycles,
            sm,
            sram as f64 / 1024.0,
            energy
        );
    }
    println!("\n(the Posit8 vector unit's single-cycle exp/recip make its softmax the fastest,");
    println!(" and 8-bit operands halve SRAM traffic vs BF16)");
}
