//! Post-training quantization of a Transformer: train a small span-
//! extraction model in FP32, then run inference in Posit8 and FP8 at
//! increasing operation-fusion levels (§4 of the paper).
//!
//! ```bash
//! cargo run --release -p qt-examples --bin ptq_inference
//! ```

use qt_autograd::Tape;
use qt_datagen::SpanTask;
use qt_quant::{ElemFormat, FusionLevel, QuantScheme};
use qt_train::{evaluate_span_f1, AdamW, Trainer};
use qt_transformer::{Model, QuantCtx, TaskHead, TrainMode, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let cfg = TransformerConfig::mobilebert_tiny_sim();
    let task = SpanTask::new(cfg.vocab, 24);
    let mut rng = StdRng::seed_from_u64(7);

    println!("training {} ({} params) on synthetic span extraction…", cfg.name, cfg.param_count());
    let model = Model::new(cfg.clone(), TaskHead::Span, &mut rng);
    let mut trainer = Trainer::new(
        model,
        QuantCtx::training(QuantScheme::fp32()),
        TrainMode::Full,
        AdamW::new(2e-3),
    );
    let data = task.dataset(300 * 16, 1);
    for (i, chunk) in data.chunks(16).enumerate() {
        let (batch, spans) = task.batch(chunk);
        let loss = trainer.step_span(&batch, &spans);
        if i % 75 == 0 {
            println!("  step {i:>4}: loss {loss:.3}");
        }
    }
    let model = trainer.model;

    let eval = task.dataset(256, 99);
    println!("\npost-training quantization (F1 on 256 held-out examples):");
    let f1 = |scheme: QuantScheme| {
        evaluate_span_f1(&model, &QuantCtx::inference(scheme), &task, &eval, 32)
    };
    println!("  BF16 baseline: {:.1}", f1(QuantScheme::bf16()));
    for fmt in [ElemFormat::P8E1, ElemFormat::P8E2, ElemFormat::E4M3] {
        print!("  {:<12}", fmt.name());
        for level in FusionLevel::ALL {
            print!(" {:>5.1}", f1(QuantScheme::uniform(fmt).with_fusion(level)));
        }
        println!("   (no-fusion → fuse-all)");
    }

    // peek at one quantized forward pass
    let (batch, _) = task.batch(&eval[..4]);
    let qctx = QuantCtx::inference(QuantScheme::posit8());
    let mut tape = Tape::new();
    let out = model.forward(&mut tape, &qctx, &batch, None, TrainMode::Frozen);
    println!(
        "\nPosit8 forward pass: {} tape nodes, logits shape {:?}",
        tape.len(),
        tape.value(out.logits).shape()
    );
}
