//! 8-bit LoRA fine-tuning (§5.3): start from a "pretrained" model, freeze
//! the backbone as quantized 8-bit weights, and train only low-rank
//! adapters — with every GEMM running on a single 8-bit data type per
//! Equation 7, and activation gradients rescued by per-tensor scaling.
//!
//! ```bash
//! cargo run --release -p qt-examples --bin lora_finetune_8bit
//! ```

use qt_datagen::{ClassifyKind, ClassifyTask};
use qt_quant::{QuantScheme, ScalingMode};
use qt_train::{evaluate_classify, AdamW, Trainer};
use qt_transformer::{LoraConfig, Model, QuantCtx, TaskHead, TrainMode, TransformerConfig};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let cfg = TransformerConfig::roberta_base_sim();
    let task = ClassifyTask::new(ClassifyKind::Qnli, cfg.vocab, 24);
    let mut rng = StdRng::seed_from_u64(3);

    // "pretrain" in FP32
    println!("pretraining {}…", cfg.name);
    let model = Model::new(cfg.clone(), TaskHead::Classify(2), &mut rng);
    let mut pre = Trainer::new(
        model,
        QuantCtx::training(QuantScheme::fp32()),
        TrainMode::Full,
        AdamW::new(2e-3),
    );
    for chunk in task.dataset(300 * 16, 1).chunks(16) {
        let (batch, labels) = task.batch(chunk);
        pre.step_classify(&batch, &labels);
    }
    let pretrained = pre.model;

    // attach LoRA and fine-tune in Posit8
    let mut model = pretrained.clone();
    model.add_lora(LoraConfig::roberta_default(), &mut rng);
    println!(
        "LoRA: {} trainable of {} total parameters ({:.2}%)",
        model.trainable_params(TrainMode::Lora),
        model.params.num_elements(),
        100.0 * model.trainable_params(TrainMode::Lora) as f64
            / model.params.num_elements() as f64
    );

    let scheme = QuantScheme::posit8_approx()
        .with_scaling(ScalingMode::PerTensorAmax { history: 16 });
    println!("fine-tuning with scheme: {}", scheme.describe());
    let mut ft = Trainer::new(
        model,
        QuantCtx::training(scheme),
        TrainMode::Lora,
        AdamW::new(2e-3),
    );
    for (i, chunk) in task.dataset(200 * 16, 2).chunks(16).enumerate() {
        let (batch, labels) = task.batch(chunk);
        let loss = ft.step_classify(&batch, &labels);
        if i % 50 == 0 {
            println!("  step {i:>4}: loss {loss:.3} (skipped so far: {})", ft.skipped());
        }
    }

    // evaluate both under the 8-bit scheme
    let eval = task.dataset(512, 99);
    let batches: Vec<_> = eval.chunks(32).map(|c| task.batch(c)).collect();
    let acc_pre = evaluate_classify(&pretrained, &QuantCtx::inference(scheme), &batches);
    let acc_ft = evaluate_classify(&ft.model, &QuantCtx::inference(scheme), &batches);
    println!("\naccuracy under Posit8 inference:");
    println!("  pretrained (no adapters): {acc_pre:.1}%");
    println!("  after 8-bit LoRA:         {acc_ft:.1}%");
}
